#ifndef MBTA_OBS_PHASE_TIMER_H_
#define MBTA_OBS_PHASE_TIMER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/threading.h"
#include "obs/trace.h"

namespace mbta {

/// Accumulated wall-clock per named phase. Phases nest: entering "solve"
/// and then "build_heap" records under the path "solve/build_heap", so a
/// flat key-ordered dump reconstructs the phase tree. Re-entering a path
/// accumulates (total ms + call count), which is what loops want.
///
/// Built with -DMBTA_OBS_THREADSAFE=ON, Record/TotalMs/Clear/Merge are
/// safe to call concurrently (internal mbta::Mutex). The nesting *stack*
/// stays a single chain, though: interleaving ScopedPhase scopes from
/// several threads on one PhaseTimings produces garbled paths — give
/// each worker thread its own PhaseTimings and Merge after join. The raw
/// `entries()` view requires quiescence, like CounterRegistry's.
class PhaseTimings {
 public:
  struct Entry {
    double total_ms = 0.0;
    std::uint64_t calls = 0;
  };

#if MBTA_OBS_THREADSAFE
  PhaseTimings() = default;
  PhaseTimings(const PhaseTimings& other);
  PhaseTimings& operator=(const PhaseTimings& other);
#endif

  /// Adds one timed call to `path` (a full nested path, "a/b/c").
  void Record(std::string_view path, double ms);

  /// Total milliseconds recorded under `path`; 0 if never entered.
  double TotalMs(std::string_view path) const;

  bool empty() const {
    MBTA_OBS_LOCK(mu_);
    return entries_.empty();
  }
  void Clear();

  const std::map<std::string, Entry, std::less<>>& entries() const
      MBTA_OBS_NO_TSA {
    return entries_;
  }

  /// Accumulates every entry of `other` into this object. Thread-safe
  /// builds lock both objects in address order. The tracer binding is
  /// not merged: phase *data* rolls up, the trace stream does not.
  void Merge(const PhaseTimings& other);

  /// Attaches a Tracer: from then on every ScopedPhase recording into
  /// this object also emits a trace span (cat "phase"), which is how all
  /// already-instrumented solvers get timeline spans without touching a
  /// single call site. Set before the solve, clear (nullptr) to detach;
  /// not guarded — attach/detach only while the object is quiescent.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

 private:
  friend class ScopedPhase;

  /// Appends `label` to the open-phase chain and returns the previous
  /// chain length (for the matching PopAndRecord).
  std::size_t PushLabel(std::string_view label);
  /// Records `ms` against the full current path, then truncates the chain
  /// back to `parent_len`.
  void PopAndRecord(std::size_t parent_len, double ms);

#if MBTA_OBS_THREADSAFE
  mutable Mutex mu_;
#endif
  std::map<std::string, Entry, std::less<>> entries_
      MBTA_OBS_GUARDED_BY(mu_);
  /// Path of the currently open ScopedPhase chain ("" at top level). Only
  /// non-empty while phases are open, so copies of a quiescent object are
  /// cheap and self-contained.
  std::string stack_ MBTA_OBS_GUARDED_BY(mu_);
  /// Optional span sink; see set_tracer.
  Tracer* tracer_ = nullptr;
};

/// RAII phase timer. Construct with the PhaseTimings to record into (or
/// nullptr to disable — then the constructor and destructor do nothing,
/// not even a clock read) and a label; nesting scopes builds the path.
///
///   ScopedPhase solve(timings, "solve");
///   { ScopedPhase p(timings, "build_heap"); ... }  // "solve/build_heap"
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimings* timings, std::string_view label);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  // mbta-lint: taint-ok(phase timings are observability-only; durations never flow into solver state)
  using Clock = std::chrono::steady_clock;
  PhaseTimings* timings_;
  std::size_t parent_len_ = 0;  // stack_ length to restore on exit
  Clock::time_point start_;
  /// Trace span mirroring this phase when the timings carry a Tracer.
  Tracer::SpanHandle span_;
};

}  // namespace mbta

#endif  // MBTA_OBS_PHASE_TIMER_H_
