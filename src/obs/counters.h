#ifndef MBTA_OBS_COUNTERS_H_
#define MBTA_OBS_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/threading.h"

namespace mbta {

/// Registry of named work counters (monotone uint64) and gauges (double
/// snapshots) with stable string keys. Keys follow the project convention
/// `<subsystem>/<noun>` in lower_snake_case, e.g. "greedy/heap_pushes" or
/// "flow/augmenting_paths" (see CONTRIBUTING.md, "Observability").
///
/// Solvers keep hot-loop tallies in local integers and publish them here
/// once per solve, so the registry itself is never on a hot path; when
/// instrumentation is disabled (the caller passed no SolveStats) nothing
/// is allocated or touched at all. Iteration is in key order, so every
/// rendering of a registry is deterministic.
///
/// Built with -DMBTA_OBS_THREADSAFE=ON every member below is additionally
/// safe to call from multiple threads (internal mbta::Mutex), except the
/// raw `counters()` / `gauges()` views, which require the registry to be
/// quiescent — take them after workers have joined, as reporting code
/// does. The default build carries no mutex and no locking cost.
class CounterRegistry {
 public:
#if MBTA_OBS_THREADSAFE
  CounterRegistry() = default;
  /// Copies snapshot the source under its lock; the copy starts with a
  /// fresh, unlocked mutex.
  CounterRegistry(const CounterRegistry& other);
  CounterRegistry& operator=(const CounterRegistry& other);
#endif

  /// Adds `delta` to the counter `key`, creating it at zero first.
  void Add(std::string_view key, std::uint64_t delta = 1);

  /// Overwrites the counter `key`.
  void Set(std::string_view key, std::uint64_t value);

  /// Overwrites the gauge `key` (a point-in-time double, e.g. a calibrated
  /// threshold or a heap's peak size in MiB).
  void SetGauge(std::string_view key, double value);

  /// Counter value; 0 if the key was never touched.
  std::uint64_t Value(std::string_view key) const;

  /// Gauge value; 0.0 if the key was never touched.
  double Gauge(std::string_view key) const;

  bool Has(std::string_view key) const;

  bool empty() const {
    MBTA_OBS_LOCK(mu_);
    return counters_.empty() && gauges_.empty();
  }
  void Clear();

  /// Key-ordered views for reporting. Not locked: callers must ensure no
  /// concurrent writers (reporting runs after the solve / after join).
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const
      MBTA_OBS_NO_TSA {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const
      MBTA_OBS_NO_TSA {
    return gauges_;
  }

  /// Adds every counter/gauge of `other` into this registry (counters sum,
  /// gauges overwrite). Used to roll per-phase registries into a total.
  /// Thread-safe builds lock both registries in address order.
  void Merge(const CounterRegistry& other);

 private:
#if MBTA_OBS_THREADSAFE
  mutable Mutex mu_;
#endif
  std::map<std::string, std::uint64_t, std::less<>> counters_
      MBTA_OBS_GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_
      MBTA_OBS_GUARDED_BY(mu_);
};

}  // namespace mbta

#endif  // MBTA_OBS_COUNTERS_H_
