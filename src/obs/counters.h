#ifndef MBTA_OBS_COUNTERS_H_
#define MBTA_OBS_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace mbta {

/// Registry of named work counters (monotone uint64) and gauges (double
/// snapshots) with stable string keys. Keys follow the project convention
/// `<subsystem>/<noun>` in lower_snake_case, e.g. "greedy/heap_pushes" or
/// "flow/augmenting_paths" (see CONTRIBUTING.md, "Observability").
///
/// Solvers keep hot-loop tallies in local integers and publish them here
/// once per solve, so the registry itself is never on a hot path; when
/// instrumentation is disabled (the caller passed no SolveStats) nothing
/// is allocated or touched at all. Iteration is in key order, so every
/// rendering of a registry is deterministic.
class CounterRegistry {
 public:
  /// Adds `delta` to the counter `key`, creating it at zero first.
  void Add(std::string_view key, std::uint64_t delta = 1);

  /// Overwrites the counter `key`.
  void Set(std::string_view key, std::uint64_t value);

  /// Overwrites the gauge `key` (a point-in-time double, e.g. a calibrated
  /// threshold or a heap's peak size in MiB).
  void SetGauge(std::string_view key, double value);

  /// Counter value; 0 if the key was never touched.
  std::uint64_t Value(std::string_view key) const;

  /// Gauge value; 0.0 if the key was never touched.
  double Gauge(std::string_view key) const;

  bool Has(std::string_view key) const;

  bool empty() const { return counters_.empty() && gauges_.empty(); }
  void Clear();

  /// Key-ordered views for reporting.
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const {
    return gauges_;
  }

  /// Adds every counter/gauge of `other` into this registry (counters sum,
  /// gauges overwrite). Used to roll per-phase registries into a total.
  void Merge(const CounterRegistry& other);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

}  // namespace mbta

#endif  // MBTA_OBS_COUNTERS_H_
