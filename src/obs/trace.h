#ifndef MBTA_OBS_TRACE_H_
#define MBTA_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace mbta {

class ThreadPool;

/// One flight-recorder entry: a compact copy of a finished span or
/// instant, kept in the Tracer's bounded ring (see Tracer below).
struct FlightEvent {
  std::string track;   // track name, e.g. "main" or "pool/worker_3"
  std::string name;    // span/instant name (slash-path grammar)
  int depth = 0;       // nesting depth on its track at emission
  double ts_us = 0.0;  // start, microseconds since tracer construction
  double dur_us = 0.0;  // 0 for instants
};

/// Snapshot of the flight recorder, taken when a solve degrades
/// (deadline hit, cancellation observed, fallback retry). Stored in
/// SolveStats::flight so post-mortems can see the last things the solver
/// did before it gave up, without shipping the whole trace around.
struct TraceSnapshot {
  std::string trigger;  // "deadline", "cancel" or "fallback/retry"
  /// Events ever recorded to the ring (>= events.size(); the difference
  /// is how many old events the bounded ring has already evicted).
  std::uint64_t total_events = 0;
  std::vector<FlightEvent> events;  // oldest first

  bool empty() const { return trigger.empty() && events.empty(); }
};

/// Span/timeline recorder emitting Chrome trace-event JSON — the
/// `{"traceEvents": [...]}` format that chrome://tracing and Perfetto
/// open directly. Spans are complete events (`ph:"X"`), one track per
/// registered thread, with deterministic per-track span ids.
///
/// Threading model: each thread binds to one named *track* (find-or-
/// create under an internal mutex via RegisterThread; the constructing
/// thread is pre-registered as "main"). After binding, span emission
/// touches only the calling thread's track — no locks, no atomics — so
/// tracing the parallel solvers costs a couple of stores per span.
/// Emissions from a thread never registered with this tracer are dropped
/// and counted, never raced. Two *live* threads must not share a track;
/// re-binding a track name from a new thread (the per-solve ThreadPool
/// pattern) is fine once the previous thread has quiesced.
///
/// Determinism: span ids are per-track sequence numbers, track ids are
/// assigned by sorted track name at write time, and events serialize in
/// begin order per track — so the emitted event *sequence* (everything
/// except the ts/dur fields) is byte-identical across runs whenever the
/// span structure is deterministic. `tools/mbta_trace --diff` enforces
/// exactly that in CI.
///
/// The tracer also feeds a bounded in-memory ring of finished events
/// (the "flight recorder", mutex-guarded since spans finish on worker
/// threads); SnapshotFlight copies out the last `flight_capacity` events
/// when a deadline/cancel/fallback trigger fires.
class Tracer {
 public:
  static constexpr std::size_t kDefaultMaxEventsPerTrack = 1 << 16;
  static constexpr std::size_t kDefaultFlightCapacity = 128;

  /// Registers the constructing thread as track "main" and starts the
  /// trace clock. Tracks that reach `max_events_per_track` drop further
  /// spans (counted in the emitted metadata) instead of growing without
  /// bound.
  explicit Tracer(std::size_t max_events_per_track = kDefaultMaxEventsPerTrack,
                  std::size_t flight_capacity = kDefaultFlightCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Binds the calling thread to the track named `track_name`
  /// (slash-path grammar, e.g. "pool/worker_2"), creating it on first
  /// use. Idempotent per (thread, name); cheap after the first call.
  void RegisterThread(std::string_view track_name);

  /// Opaque handle to an open span. Valid until the matching EndSpan on
  /// the same thread.
  struct SpanHandle {
    void* track = nullptr;
    std::ptrdiff_t index = -1;
    bool valid() const { return track != nullptr; }
  };

  /// Opens a span on the calling thread's track. Returns an invalid
  /// handle (all subsequent calls no-ops) when the thread is
  /// unregistered or the track is full. Prefer ScopedSpan.
  SpanHandle BeginSpan(std::string_view name, std::string_view cat);
  /// Closes `handle`, fixing the span's duration and feeding the flight
  /// ring. Must run on the thread that opened it.
  void EndSpan(SpanHandle handle);
  /// Attaches an integer/string arg, rendered into the span's `args`
  /// object. Call between BeginSpan and EndSpan, on the owning thread.
  void AddSpanArg(SpanHandle handle, std::string_view key,
                  std::int64_t value);
  void AddSpanArg(SpanHandle handle, std::string_view key,
                  std::string_view value);

  /// Emits a zero-duration instant event (`ph:"i"`) on the calling
  /// thread's track, e.g. "fallback/retry".
  void Instant(std::string_view name, std::string_view cat);

  /// Copies the flight ring (oldest first) under the ring mutex. Safe to
  /// call from any thread, typically right after a budget expires.
  TraceSnapshot SnapshotFlight(std::string_view trigger) const;

  /// Serializes the whole trace as a Chrome trace-event JSON document.
  /// Call after every traced thread has quiesced (post-join, post-solve).
  std::string ToJson() const;

  /// ToJson written to `path`. Returns false (and fills `error` when
  /// non-null) if the file cannot be written.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;

  /// Spans dropped across all tracks (track buffer full) plus events
  /// from unregistered threads. Quiescence required, like ToJson.
  std::uint64_t dropped_events() const;

 private:
  struct SpanArg {
    std::string key;
    std::string string_value;
    std::int64_t int_value = 0;
    bool is_int = false;
  };

  struct Event {
    std::string name;
    std::string cat;
    std::uint64_t id = 0;     // per-track sequence number
    int depth = 0;            // nesting depth at begin
    double ts_us = 0.0;
    double dur_us = -1.0;     // -1 while the span is still open
    bool instant = false;
    std::vector<SpanArg> args;
  };

  /// Per-thread event buffer. Only the bound thread writes it.
  struct Track {
    std::string name;
    std::vector<Event> events;
    std::vector<std::size_t> open;  // indices of open spans, innermost last
    std::uint64_t next_id = 0;
    std::uint64_t dropped = 0;
  };

  // mbta-lint: taint-ok(span timestamps are trace-output-only; solver state never reads them)
  using Clock = std::chrono::steady_clock;

  double NowUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
        .count();
  }

  /// The calling thread's track, or nullptr when it never registered
  /// with this tracer (the unregistered-drop counter is bumped).
  Track* BoundTrack();
  void PushFlight(const Track& track, const Event& event);

  const Clock::time_point epoch_;
  const std::size_t max_events_per_track_;
  const std::size_t flight_capacity_;

  mutable Mutex mu_;
  /// unique_ptr for address stability: threads hold raw Track pointers
  /// while registration appends.
  std::vector<std::unique_ptr<Track>> tracks_ MBTA_GUARDED_BY(mu_);
  std::uint64_t unregistered_drops_ MBTA_GUARDED_BY(mu_) = 0;

  mutable Mutex flight_mu_;
  std::vector<FlightEvent> flight_ MBTA_GUARDED_BY(flight_mu_);  // ring
  std::size_t flight_next_ MBTA_GUARDED_BY(flight_mu_) = 0;
  std::uint64_t flight_total_ MBTA_GUARDED_BY(flight_mu_) = 0;
};

/// Wires a ThreadPool into `tracer`: registers every pool worker as a
/// "pool/worker_N" track (the deterministic ParallelFor(num_threads)
/// identity dispatch — participant p runs exactly index p) and installs
/// slice hooks so each pooled slice shows up as a "pool/slice" span
/// (cat "pool") on the executing participant's track. Slice spans are
/// the one place the trace legitimately depends on the thread count, so
/// the cross-thread-count determinism gate diffs with
/// `mbta_trace --diff --ignore-cat pool`. No-op when `tracer` is null or
/// the pool is single-threaded. Call once per pool, before its first
/// traced ParallelFor.
void AttachPoolTracing(ThreadPool* pool, Tracer* tracer);

/// RAII span, the tracing analogue of ScopedPhase:
///
///   ScopedSpan span(tracer, "solve/parallel/batch", "solver");
///   span.Arg("edges", static_cast<std::int64_t>(batch.size()));
///
/// A null tracer disables the span entirely (no clock read), so call
/// sites follow the same `info != nullptr` discipline as counters. Span
/// names use the full slash-path grammar (lint rule R5).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name,
             std::string_view cat = "span")
      : tracer_(tracer) {
    if (tracer_ != nullptr) handle_ = tracer_->BeginSpan(name, cat);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(handle_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Arg(std::string_view key, std::int64_t value) {
    if (tracer_ != nullptr) tracer_->AddSpanArg(handle_, key, value);
  }
  void Arg(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->AddSpanArg(handle_, key, value);
  }

 private:
  Tracer* tracer_;
  Tracer::SpanHandle handle_;
};

}  // namespace mbta

#endif  // MBTA_OBS_TRACE_H_
