#ifndef MBTA_PLATFORM_PLATFORM_H_
#define MBTA_PLATFORM_PLATFORM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gen/market_generator.h"
#include "market/labor_market.h"

namespace mbta {

/// What the platform knows about worker reliability when it assigns:
///  kOracle  — true reliabilities (upper reference; unobtainable live).
///  kLearned — reputation estimates updated from inferred answer
///             correctness each round (the realistic closed loop).
///  kStatic  — the prior only, never updated (lower reference).
enum class KnowledgeModel { kOracle, kLearned, kStatic };

const char* ToString(KnowledgeModel model);

/// Configuration of a multi-round platform simulation. A fixed worker
/// population persists across rounds; each round posts a fresh batch of
/// tasks, assigns, collects simulated answers, infers truth, and (under
/// kLearned) updates worker reputations.
struct PlatformConfig {
  /// Template describing the per-round market (worker population and task
  /// batches are drawn from it; the template's seed anchors everything).
  GeneratorConfig market_template;
  int rounds = 10;
  /// Trade-off weight used by the per-round assignment.
  double alpha = 0.7;
  /// Fraction of each round's tasks injected as *gold* tasks: the
  /// platform knows their true label, so answers to them give unbiased
  /// reputation observations (workers cannot tell them apart). 0 disables
  /// gold; only affects kLearned.
  double gold_fraction = 0.0;
  /// Per-round probability that an existing worker is replaced by a fresh
  /// one (reputation resets to the prior). Models population churn; only
  /// affects kLearned beliefs — the true reliability changes for all
  /// models identically.
  double churn_rate = 0.0;
  std::uint64_t seed = 1;
};

/// Per-round outcome of a platform run.
struct RoundStats {
  int round = 0;
  /// Label accuracy of Dawid–Skene inference vs ground truth this round.
  double label_accuracy = 0.0;
  /// Fraction of this round's tasks that received at least one answer.
  double coverage = 0.0;
  /// Mutual benefit of the round's assignment measured under the TRUE
  /// edge qualities (what the platform actually delivered, not what its
  /// possibly-wrong beliefs predicted).
  double true_mutual_benefit = 0.0;
  /// RMSE of the platform's reliability estimates vs the true worker
  /// reliabilities (0 for kOracle by construction).
  double reputation_rmse = 0.0;
  std::size_t num_assignments = 0;
};

struct PlatformResult {
  KnowledgeModel model;
  std::vector<RoundStats> rounds;
};

/// Runs the closed-loop simulation. Deterministic given the config.
PlatformResult RunPlatform(const PlatformConfig& config,
                           KnowledgeModel model);

/// Market template tuned so that reliability knowledge matters: task
/// slots are scarce relative to worker supply (beliefs decide *which*
/// workers get the work), every task still collects 3 answers (so truth
/// inference has signal), worker reliabilities are widely spread, and the
/// objective leans requester-side. Used by the reputation-learning
/// experiment and tests.
GeneratorConfig ContendedLabelingConfig(std::size_t workers,
                                        std::uint64_t seed);

}  // namespace mbta

#endif  // MBTA_PLATFORM_PLATFORM_H_
