#ifndef MBTA_PLATFORM_REPUTATION_H_
#define MBTA_PLATFORM_REPUTATION_H_

#include <cstddef>
#include <vector>

#include "market/types.h"
#include "sim/aggregation.h"

namespace mbta {

/// Bayesian reputation tracker: per worker, a Beta(a, b) posterior over
/// the probability that the worker's answers agree with the (inferred)
/// truth. The platform never sees true reliabilities — it learns them
/// from inferred answer correctness, and feeds the posterior mean back
/// into the next round's assignment decisions.
class ReputationTracker {
 public:
  /// `prior_a / (prior_a + prior_b)` is the reliability assumed for a
  /// brand-new worker. The default prior mean of 0.7 reflects that crowd
  /// workers are better than coin flips but not experts.
  ReputationTracker(std::size_t num_workers, double prior_a = 3.5,
                    double prior_b = 1.5);

  std::size_t num_workers() const { return a_.size(); }

  /// Posterior mean estimate of P(worker answers correctly), in (0, 1).
  double EstimatedReliability(WorkerId w) const;

  /// Total observation weight accumulated for a worker (0 for unseen).
  double ObservationWeight(WorkerId w) const;

  /// Records an observation: out of `total_weight` (fractional) answers,
  /// `correct_weight` agreed with the inferred truth.
  void Observe(WorkerId w, double correct_weight, double total_weight);

  /// Resets a worker to the prior (the worker churned: a fresh person now
  /// holds the id).
  void Reset(WorkerId w);

  /// Batch update from one round: each answer counts as correct iff it
  /// matches the aggregator's inferred label for its task. Tasks without
  /// an inferred label are skipped.
  void UpdateFromPredictions(const AnswerSet& answers,
                             const Predictions& predicted);

  /// Root-mean-square error of the estimates against a ground-truth
  /// reliability vector (diagnostic for experiments; the platform itself
  /// never calls this).
  double Rmse(const std::vector<double>& true_reliability) const;

 private:
  std::vector<double> a_;
  std::vector<double> b_;
  double prior_a_;
  double prior_b_;
};

}  // namespace mbta

#endif  // MBTA_PLATFORM_REPUTATION_H_
