#include "platform/reputation.h"

#include <cmath>

#include "util/check.h"

namespace mbta {

ReputationTracker::ReputationTracker(std::size_t num_workers, double prior_a,
                                     double prior_b)
    : a_(num_workers, prior_a),
      b_(num_workers, prior_b),
      prior_a_(prior_a),
      prior_b_(prior_b) {
  MBTA_CHECK(prior_a > 0.0 && prior_b > 0.0);
}

double ReputationTracker::EstimatedReliability(WorkerId w) const {
  MBTA_CHECK(w < a_.size());
  return a_[w] / (a_[w] + b_[w]);
}

double ReputationTracker::ObservationWeight(WorkerId w) const {
  MBTA_CHECK(w < a_.size());
  return a_[w] + b_[w] - prior_a_ - prior_b_;
}

void ReputationTracker::Observe(WorkerId w, double correct_weight,
                                double total_weight) {
  MBTA_CHECK(w < a_.size());
  MBTA_CHECK(total_weight >= 0.0);
  MBTA_CHECK(correct_weight >= 0.0 && correct_weight <= total_weight);
  a_[w] += correct_weight;
  b_[w] += total_weight - correct_weight;
}

void ReputationTracker::Reset(WorkerId w) {
  MBTA_CHECK(w < a_.size());
  a_[w] = prior_a_;
  b_[w] = prior_b_;
}

void ReputationTracker::UpdateFromPredictions(const AnswerSet& answers,
                                              const Predictions& predicted) {
  MBTA_CHECK(predicted.size() == answers.NumTasks());
  for (std::size_t t = 0; t < answers.NumTasks(); ++t) {
    if (predicted[t] == kNoLabel) continue;
    for (const Answer& answer : answers.answers[t]) {
      const double correct = answer.label == predicted[t] ? 1.0 : 0.0;
      Observe(answer.worker, correct, 1.0);
    }
  }
}

double ReputationTracker::Rmse(
    const std::vector<double>& true_reliability) const {
  MBTA_CHECK(true_reliability.size() == a_.size());
  if (a_.empty()) return 0.0;
  double sum_sq = 0.0;
  for (WorkerId w = 0; w < a_.size(); ++w) {
    const double d = EstimatedReliability(w) - true_reliability[w];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(a_.size()));
}

}  // namespace mbta
