#include "platform/platform.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/greedy_solver.h"
#include "market/metrics.h"
#include "platform/reputation.h"
#include "sim/answers.h"
#include "util/check.h"
#include "util/rng.h"

namespace mbta {

namespace {

/// Rebuilds `truth` with each worker's reliability replaced by the
/// platform's belief, recomputing every edge's quality under the belief.
/// Worker-side benefits and the edge set itself are unchanged (eligibility
/// does not depend on reliability).
LaborMarket WithBelievedReliability(const LaborMarket& truth,
                                    const std::vector<double>& belief,
                                    const EdgeModelParams& params) {
  LaborMarketBuilder builder;
  builder.SetName(truth.name() + "+beliefs");
  for (Worker w : truth.workers()) {
    w.reliability = std::clamp(belief[w.id], 0.5, 0.995);
    builder.AddWorker(std::move(w));
  }
  for (const Task& t : truth.tasks()) builder.AddTask(t);
  for (EdgeId e = 0; e < truth.NumEdges(); ++e) {
    const WorkerId w = truth.EdgeWorker(e);
    const TaskId t = truth.EdgeTask(e);
    Worker believed = truth.worker(w);
    believed.reliability = std::clamp(belief[w], 0.5, 0.995);
    builder.AddEdge(w, t,
                    ComputeEdgeAttributes(believed, truth.task(t), params));
  }
  return builder.Build();
}

/// Attenuation factor f in q = 0.5 + (r − 0.5)·f for one edge; the
/// platform knows skills and difficulty, so it can de-bias observed
/// correctness into a reliability estimate.
double Attenuation(const Worker& w, const Task& t) {
  const double match = SkillMatch(w.skills, t.required_skills);
  return (0.3 + 0.7 * match) * (1.0 - 0.5 * t.difficulty);
}

/// Slope relating leave-one-out agreement to answer correctness:
/// p = 0.5 + (q − 0.5)·(2m − 1), where m ≈ 0.9 is the accuracy of a
/// unanimous referee pair of typical workers. Gold observations have
/// slope 1 (they measure correctness directly).
constexpr double kRefereeSlope = 0.8;

}  // namespace

GeneratorConfig ContendedLabelingConfig(std::size_t workers,
                                        std::uint64_t seed) {
  GeneratorConfig c = UniformConfig(workers, std::max<std::size_t>(workers / 4, 1), seed);
  c.name = "contended-labeling";
  c.task_capacity_min = 3;  // redundancy keeps truth inference alive
  c.task_capacity_max = 3;
  c.worker_capacity_min = 1;
  c.worker_capacity_max = 3;  // ~2·W supply chasing 0.75·W slots
  c.candidates_per_worker = 25;
  c.difficulty_max = 0.0;          // quality differences come from workers
  c.reliability_beta_a = 1.2;      // wide reliability spread: knowing who
  c.reliability_beta_b = 1.2;      // is good is worth a lot
  c.skill_dims = 0;                // no skill confound in this experiment
  return c;
}

const char* ToString(KnowledgeModel model) {
  switch (model) {
    case KnowledgeModel::kOracle:
      return "oracle";
    case KnowledgeModel::kLearned:
      return "learned";
    case KnowledgeModel::kStatic:
      return "static";
  }
  return "unknown";
}

PlatformResult RunPlatform(const PlatformConfig& config,
                           KnowledgeModel model) {
  MBTA_CHECK(config.rounds > 0);
  PlatformResult result;
  result.model = model;

  MBTA_CHECK(config.gold_fraction >= 0.0 && config.gold_fraction <= 1.0);
  MBTA_CHECK(config.churn_rate >= 0.0 && config.churn_rate <= 1.0);

  Rng rng(config.seed);
  WorkerPopulation population =
      DrawWorkerPopulation(config.market_template, rng);
  const std::size_t num_workers = population.workers.size();

  std::vector<double> true_reliability(num_workers);
  for (WorkerId w = 0; w < num_workers; ++w) {
    true_reliability[w] = population.workers[w].reliability;
  }

  ReputationTracker tracker(num_workers);
  // De-biasing accumulators: observed correctness is attenuated by skill
  // match and difficulty, so the platform also tracks the mean
  // attenuation of each worker's answered edges.
  std::vector<double> attenuation_sum(num_workers, 0.0);
  std::vector<double> attenuation_count(num_workers, 0.0);

  auto current_belief = [&]() {
    std::vector<double> belief(num_workers);
    for (WorkerId w = 0; w < num_workers; ++w) {
      switch (model) {
        case KnowledgeModel::kOracle:
          belief[w] = true_reliability[w];
          break;
        case KnowledgeModel::kStatic:
        case KnowledgeModel::kLearned: {
          // De-bias the observed agreement rate p into a reliability
          // estimate: every observation satisfies
          // E[observation] = 0.5 + (r − 0.5)·slope, where the slope is
          // the edge-model attenuation f (gold) or kRefereeSlope·f
          // (leave-one-out); attenuation_sum accumulates the per-
          // observation slopes, so dividing by their mean inverts the
          // mixture.
          const double p = tracker.EstimatedReliability(w);
          const double slope =
              attenuation_count[w] > 0.0
                  ? attenuation_sum[w] / attenuation_count[w]
                  : kRefereeSlope * 0.65;  // typical LOO slope
          belief[w] = std::clamp(0.5 + (p - 0.5) / slope, 0.5, 0.995);
          break;
        }
      }
    }
    return belief;
  };

  for (int round = 0; round < config.rounds; ++round) {
    Rng round_rng(config.seed * 7919 + static_cast<std::uint64_t>(round));

    // Churn: some workers are replaced by fresh people with redrawn
    // reliability. All knowledge models face the same new truth; only the
    // learned model's accumulated evidence becomes stale (and is reset —
    // the platform sees a brand-new account).
    if (config.churn_rate > 0.0 && round > 0) {
      for (WorkerId w = 0; w < num_workers; ++w) {
        if (!round_rng.NextBool(config.churn_rate)) continue;
        const double fresh =
            0.5 + 0.5 * round_rng.NextBeta(
                            config.market_template.reliability_beta_a,
                            config.market_template.reliability_beta_b);
        population.workers[w].reliability = fresh;
        true_reliability[w] = fresh;
        tracker.Reset(w);
        attenuation_sum[w] = 0.0;
        attenuation_count[w] = 0.0;
      }
    }

    // Fresh task batch against the (possibly churned) worker population.
    const LaborMarket truth = DrawMarketForPopulation(
        config.market_template, population, round_rng);

    // Gold set: tasks whose true label the platform knows.
    std::vector<bool> is_gold(truth.NumTasks(), false);
    if (config.gold_fraction > 0.0) {
      for (TaskId t = 0; t < truth.NumTasks(); ++t) {
        is_gold[t] = round_rng.NextBool(config.gold_fraction);
      }
    }

    // Assign under the platform's current beliefs.
    const std::vector<double> belief = current_belief();
    const LaborMarket believed = WithBelievedReliability(
        truth, belief, config.market_template.edge_model);
    const MbtaProblem decision{
        &believed, {.alpha = config.alpha,
                    .kind = ObjectiveKind::kSubmodular}};
    const Assignment assignment = GreedySolver().Solve(decision);

    // The crowd answers according to the TRUE qualities.
    const AnswerSet answers = SimulateAnswers(
        truth, assignment,
        config.seed * 104729 + static_cast<std::uint64_t>(round));
    const Predictions predicted = DawidSkene().Aggregate(answers);

    if (model == KnowledgeModel::kLearned) {
      // Leave-one-out scoring: a worker's answer is judged against the
      // majority of the *other* answers on the task. Scoring against a
      // label the worker itself voted on would make everyone look
      // reliable (with redundancy 3, a split pair means the worker's own
      // vote decides the label).
      for (std::size_t t = 0; t < answers.NumTasks(); ++t) {
        const auto& task_answers = answers.answers[t];
        if (is_gold[t]) {
          // Gold task: score directly against the known truth — an
          // unbiased observation per answer.
          for (const Answer& answer : task_answers) {
            tracker.Observe(answer.worker,
                            answer.label == answers.truth[t] ? 1.0 : 0.0,
                            1.0);
            // Gold observations measure correctness directly: slope = f.
            attenuation_sum[answer.worker] +=
                Attenuation(truth.worker(answer.worker),
                            truth.task(static_cast<TaskId>(t)));
            attenuation_count[answer.worker] += 1.0;
          }
          continue;
        }
        if (task_answers.size() < 2) continue;
        int ones = 0;
        for (const Answer& answer : task_answers) {
          ones += answer.label == 1 ? 1 : 0;
        }
        for (const Answer& answer : task_answers) {
          const int other_ones = ones - (answer.label == 1 ? 1 : 0);
          const int other_count = static_cast<int>(task_answers.size()) - 1;
          if (2 * other_ones == other_count) continue;  // others tied
          const Label others_say = 2 * other_ones > other_count ? 1 : 0;
          tracker.Observe(answer.worker,
                          answer.label == others_say ? 1.0 : 0.0, 1.0);
          // Leave-one-out observations carry the referee slope.
          attenuation_sum[answer.worker] +=
              kRefereeSlope *
              Attenuation(truth.worker(answer.worker),
                          truth.task(static_cast<TaskId>(t)));
          attenuation_count[answer.worker] += 1.0;
        }
      }
    }

    RoundStats stats;
    stats.round = round;
    stats.label_accuracy = LabelAccuracy(answers, predicted);
    stats.coverage = TaskCoverage(answers);
    const MutualBenefitObjective true_objective(
        &truth, {.alpha = config.alpha,
                 .kind = ObjectiveKind::kSubmodular});
    stats.true_mutual_benefit = true_objective.Value(assignment);
    stats.num_assignments = assignment.size();
    if (model != KnowledgeModel::kOracle) {
      // RMSE of the (de-biased) beliefs the platform will carry into the
      // next round.
      double sum_sq = 0.0;
      const std::vector<double> updated = current_belief();
      for (WorkerId w = 0; w < num_workers; ++w) {
        const double d = updated[w] - true_reliability[w];
        sum_sq += d * d;
      }
      stats.reputation_rmse =
          std::sqrt(sum_sq / static_cast<double>(num_workers));
    }
    result.rounds.push_back(stats);
  }
  return result;
}

}  // namespace mbta
