#include "io/market_io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "util/fault_injector.h"

namespace mbta {

namespace {

constexpr char kMarketHeader[] = "mbta-market v1";
constexpr char kAssignmentHeader[] = "mbta-assignment v1";

/// Hard ceilings on untrusted section counts. A hostile header like
/// "workers 99999999999999999999" must fail validation, not drive a
/// pre-allocation: strtoll-style extraction already rejects values that
/// overflow long long, and these caps reject absurd-but-representable
/// counts before any loop trusts them. The limits are far above every
/// dataset in ROADMAP.md yet small enough that count * sizeof(entity)
/// stays comfortably addressable.
constexpr long long kMaxEntities = 50'000'000;     // workers, tasks
constexpr long long kMaxEdgeCount = 500'000'000;   // edges, pairs
constexpr std::size_t kMaxSkillDims = 4096;        // per-line skill vector

/// IEEE quirk guard: NaN compares false against every bound, so a plain
/// `x < 0.0 || x > 1.0` range check silently accepts it. Every double
/// parsed from a file goes through here.
bool AllFinite(std::initializer_list<double> values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Reads one non-empty, non-comment line. Returns false at EOF.
bool NextLine(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    if (!line->empty() && (*line)[0] != '#') return true;
  }
  return false;
}

bool ExpectCount(std::istream& in, const std::string& keyword,
                 long long max_count, std::size_t* count,
                 std::string* error) {
  std::string line;
  if (!NextLine(in, &line)) {
    Fail(error, "unexpected end of file before '" + keyword + "'");
    return false;
  }
  std::istringstream ls(line);
  std::string word;
  long long n = -1;
  // Extraction fails (and the count is rejected) when the digits overflow
  // long long, so "99999999999999999999" never wraps into a small value.
  if (!(ls >> word >> n) || word != keyword || n < 0) {
    Fail(error, "expected '" + keyword + " <count>', got: " + line);
    return false;
  }
  if (n > max_count) {
    Fail(error, "implausible " + keyword + " count " + std::to_string(n) +
                    " (limit " + std::to_string(max_count) + ")");
    return false;
  }
  *count = static_cast<std::size_t>(n);
  return true;
}

void WriteSkills(const SkillVector& skills, std::ostream& out) {
  for (double s : skills) out << ' ' << s;
}

bool ReadSkills(std::istringstream& ls, SkillVector* skills) {
  double v = 0.0;
  while (ls >> v) {
    if (!std::isfinite(v) || v < 0.0) return false;
    if (skills->size() >= kMaxSkillDims) return false;
    skills->push_back(v);
  }
  // The loop must have stopped at end-of-line, not at an unparseable
  // token: num_get rejects "nan"/"inf" spellings without consuming them,
  // and silently dropping trailing garbage would mask corrupt files.
  return ls.eof();
}

}  // namespace

void WriteMarket(const LaborMarket& market, std::ostream& out) {
  out << kMarketHeader << '\n';
  out << "name " << market.name() << '\n';
  out << std::setprecision(17);
  out << "workers " << market.NumWorkers() << '\n';
  for (const Worker& w : market.workers()) {
    out << "w " << w.capacity << ' ' << w.unit_cost << ' ' << w.fatigue
        << ' ' << w.reliability;
    WriteSkills(w.skills, out);
    out << '\n';
  }
  out << "tasks " << market.NumTasks() << '\n';
  for (const Task& t : market.tasks()) {
    out << "t " << t.capacity << ' ' << t.payment << ' ' << t.value << ' '
        << t.difficulty << ' ' << t.requester;
    WriteSkills(t.required_skills, out);
    out << '\n';
  }
  out << "edges " << market.NumEdges() << '\n';
  for (EdgeId e = 0; e < market.NumEdges(); ++e) {
    out << "e " << market.EdgeWorker(e) << ' ' << market.EdgeTask(e) << ' '
        << market.Quality(e) << ' ' << market.WorkerBenefit(e) << '\n';
  }
}

std::optional<LaborMarket> ReadMarket(std::istream& in, std::string* error,
                                      FaultInjector* faults) {
  std::string line;
  if (!NextLine(in, &line) || line != kMarketHeader) {
    Fail(error, "missing or bad header (want '" +
                    std::string(kMarketHeader) + "')");
    return std::nullopt;
  }
  if (!NextLine(in, &line) || line.rfind("name ", 0) != 0) {
    Fail(error, "expected 'name <name>'");
    return std::nullopt;
  }
  LaborMarketBuilder builder;
  builder.SetName(line.substr(5));

  std::size_t num_workers = 0;
  if (!ExpectCount(in, "workers", kMaxEntities, &num_workers, error)) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < num_workers; ++i) {
    MaybeFail(faults, "io/read");
    if (!NextLine(in, &line)) {
      Fail(error, "truncated worker section");
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string tag;
    Worker w;
    if (!(ls >> tag >> w.capacity >> w.unit_cost >> w.fatigue >>
          w.reliability) ||
        tag != "w" || !ReadSkills(ls, &w.skills) ||
        !AllFinite({w.unit_cost, w.fatigue, w.reliability}) ||
        w.capacity < 0 || w.unit_cost < 0.0 || w.fatigue <= 0.0 ||
        w.fatigue > 1.0 || w.reliability < 0.0 || w.reliability > 1.0) {
      Fail(error, "bad worker line: " + line);
      return std::nullopt;
    }
    builder.AddWorker(std::move(w));
  }

  std::size_t num_tasks = 0;
  if (!ExpectCount(in, "tasks", kMaxEntities, &num_tasks, error)) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < num_tasks; ++i) {
    MaybeFail(faults, "io/read");
    if (!NextLine(in, &line)) {
      Fail(error, "truncated task section");
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string tag;
    Task t;
    if (!(ls >> tag >> t.capacity >> t.payment >> t.value >>
          t.difficulty >> t.requester) ||
        tag != "t" || !ReadSkills(ls, &t.required_skills) ||
        !AllFinite({t.payment, t.value, t.difficulty}) ||
        t.capacity < 0 || t.payment < 0.0 || t.value < 0.0 ||
        t.difficulty < 0.0 || t.difficulty > 1.0) {
      Fail(error, "bad task line: " + line);
      return std::nullopt;
    }
    builder.AddTask(std::move(t));
  }

  std::size_t num_edges = 0;
  if (!ExpectCount(in, "edges", kMaxEdgeCount, &num_edges, error)) {
    return std::nullopt;
  }
  // Duplicate edges are rejected below, so any count beyond the complete
  // bipartite graph is a lie about the file that follows.
  if (num_edges > num_workers * num_tasks) {
    Fail(error, "edge count exceeds workers * tasks");
    return std::nullopt;
  }
  // mbta-lint: unordered-ok(membership-only duplicate probe, never iterated)
  std::unordered_set<std::uint64_t> seen_pairs;
  // Cap the speculative reservation: the declared count is untrusted
  // input and parsing fails fast on the first missing line anyway.
  seen_pairs.reserve(
      std::min<std::size_t>(num_edges, 1u << 20) * 2);
  for (std::size_t i = 0; i < num_edges; ++i) {
    MaybeFail(faults, "io/read");
    if (!NextLine(in, &line)) {
      Fail(error, "truncated edge section");
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string tag;
    std::uint64_t w = 0, t = 0;
    EdgeAttributes attr;
    if (!(ls >> tag >> w >> t >> attr.quality >> attr.worker_benefit) ||
        tag != "e" || w >= num_workers || t >= num_tasks ||
        !AllFinite({attr.quality, attr.worker_benefit}) ||
        attr.quality < 0.0 || attr.quality > 1.0 ||
        attr.worker_benefit < 0.0) {
      Fail(error, "bad edge line: " + line);
      return std::nullopt;
    }
    if (!seen_pairs.insert((w << 32) | t).second) {
      Fail(error, "duplicate edge: " + line);
      return std::nullopt;
    }
    builder.AddEdge(static_cast<WorkerId>(w), static_cast<TaskId>(t), attr);
  }
  return builder.Build();
}

bool WriteMarketToFile(const LaborMarket& market, const std::string& path,
                       std::string* error) {
  std::ofstream out(path);
  if (!out) {
    Fail(error, "cannot open for writing: " + path);
    return false;
  }
  WriteMarket(market, out);
  return static_cast<bool>(out);
}

std::optional<LaborMarket> ReadMarketFromFile(const std::string& path,
                                              std::string* error,
                                              FaultInjector* faults) {
  std::ifstream in(path);
  if (!in) {
    Fail(error, "cannot open for reading: " + path);
    return std::nullopt;
  }
  return ReadMarket(in, error, faults);
}

void WriteAssignment(const LaborMarket& market, const Assignment& a,
                     std::ostream& out) {
  out << kAssignmentHeader << '\n';
  out << "pairs " << a.edges.size() << '\n';
  for (EdgeId e : a.edges) {
    out << "a " << market.EdgeWorker(e) << ' ' << market.EdgeTask(e)
        << '\n';
  }
}

std::optional<Assignment> ReadAssignment(const LaborMarket& market,
                                         std::istream& in,
                                         std::string* error,
                                         FaultInjector* faults) {
  std::string line;
  if (!NextLine(in, &line) || line != kAssignmentHeader) {
    Fail(error, "missing or bad header (want '" +
                    std::string(kAssignmentHeader) + "')");
    return std::nullopt;
  }
  std::size_t pairs = 0;
  if (!ExpectCount(in, "pairs", kMaxEdgeCount, &pairs, error)) {
    return std::nullopt;
  }
  Assignment a;
  for (std::size_t i = 0; i < pairs; ++i) {
    MaybeFail(faults, "io/read");
    if (!NextLine(in, &line)) {
      Fail(error, "truncated pair section");
      return std::nullopt;
    }
    std::istringstream ls(line);
    std::string tag;
    std::uint64_t w = 0, t = 0;
    if (!(ls >> tag >> w >> t) || tag != "a" || w >= market.NumWorkers() ||
        t >= market.NumTasks()) {
      Fail(error, "bad pair line: " + line);
      return std::nullopt;
    }
    const EdgeId e = market.graph().FindEdge(static_cast<VertexId>(w),
                                             static_cast<VertexId>(t));
    if (e == kInvalidEdge) {
      Fail(error, "pair is not an eligible edge: " + line);
      return std::nullopt;
    }
    a.edges.push_back(e);
  }
  if (!IsFeasible(market, a)) {
    Fail(error, "assignment violates capacities or repeats a pair");
    return std::nullopt;
  }
  return a;
}

bool WriteAssignmentToFile(const LaborMarket& market, const Assignment& a,
                           const std::string& path, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    Fail(error, "cannot open for writing: " + path);
    return false;
  }
  WriteAssignment(market, a, out);
  return static_cast<bool>(out);
}

std::optional<Assignment> ReadAssignmentFromFile(const LaborMarket& market,
                                                 const std::string& path,
                                                 std::string* error,
                                                 FaultInjector* faults) {
  std::ifstream in(path);
  if (!in) {
    Fail(error, "cannot open for reading: " + path);
    return std::nullopt;
  }
  return ReadAssignment(market, in, error, faults);
}

}  // namespace mbta
