#ifndef MBTA_IO_MARKET_IO_H_
#define MBTA_IO_MARKET_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "market/assignment.h"
#include "market/labor_market.h"

namespace mbta {

/// Plain-text persistence for markets and assignments.
///
/// Market format (line-oriented, sections in fixed order):
///
///   mbta-market v1
///   name <name>
///   workers <count>
///   w <capacity> <unit_cost> <fatigue> <reliability> <skill...>
///   ...
///   tasks <count>
///   t <capacity> <payment> <value> <difficulty> <requester> <skill...>
///   ...
///   edges <count>
///   e <worker> <task> <quality> <worker_benefit>
///   ...
///
/// Entity ids are implicit (line order). Skill vectors may be empty.
/// Assignment format:
///
///   mbta-assignment v1
///   pairs <count>
///   a <worker> <task>
///   ...
///
/// Readers validate structure and ranges and report the first problem via
/// the error string instead of aborting — files are external input.

/// Serializes a market.
void WriteMarket(const LaborMarket& market, std::ostream& out);
bool WriteMarketToFile(const LaborMarket& market, const std::string& path,
                       std::string* error = nullptr);

/// Parses a market; returns std::nullopt and fills `error` on failure.
std::optional<LaborMarket> ReadMarket(std::istream& in, std::string* error);
std::optional<LaborMarket> ReadMarketFromFile(const std::string& path,
                                              std::string* error);

/// Serializes an assignment as (worker, task) pairs of `market`.
void WriteAssignment(const LaborMarket& market, const Assignment& a,
                     std::ostream& out);
bool WriteAssignmentToFile(const LaborMarket& market, const Assignment& a,
                           const std::string& path,
                           std::string* error = nullptr);

/// Parses an assignment against `market`, resolving (worker, task) pairs
/// to edge ids. Fails on unknown pairs or infeasible results.
std::optional<Assignment> ReadAssignment(const LaborMarket& market,
                                         std::istream& in,
                                         std::string* error);
std::optional<Assignment> ReadAssignmentFromFile(const LaborMarket& market,
                                                 const std::string& path,
                                                 std::string* error);

}  // namespace mbta

#endif  // MBTA_IO_MARKET_IO_H_
