#ifndef MBTA_IO_MARKET_IO_H_
#define MBTA_IO_MARKET_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "market/assignment.h"
#include "market/labor_market.h"

namespace mbta {

class FaultInjector;

/// Plain-text persistence for markets and assignments.
///
/// Market format (line-oriented, sections in fixed order):
///
///   mbta-market v1
///   name <name>
///   workers <count>
///   w <capacity> <unit_cost> <fatigue> <reliability> <skill...>
///   ...
///   tasks <count>
///   t <capacity> <payment> <value> <difficulty> <requester> <skill...>
///   ...
///   edges <count>
///   e <worker> <task> <quality> <worker_benefit>
///   ...
///
/// Entity ids are implicit (line order). Skill vectors may be empty.
/// Assignment format:
///
///   mbta-assignment v1
///   pairs <count>
///   a <worker> <task>
///   ...
///
/// Readers validate structure and ranges and report the first problem via
/// the error string instead of aborting — files are external input. All
/// numeric fields must be finite (NaN/Inf are rejected: IEEE comparisons
/// make NaN slip through plain range checks), section counts must fit the
/// hard ceilings below, and the edge count may not exceed workers*tasks —
/// a hostile header cannot make the reader pre-allocate unbounded memory.
///
/// Readers accept an optional FaultInjector and fire the "io/read" fault
/// point once per entity line, so tests can script truncated/dying reads
/// deterministically (see CONTRIBUTING.md "Robustness").

/// Serializes a market.
void WriteMarket(const LaborMarket& market, std::ostream& out);
bool WriteMarketToFile(const LaborMarket& market, const std::string& path,
                       std::string* error = nullptr);

/// Parses a market; returns std::nullopt and fills `error` on failure.
std::optional<LaborMarket> ReadMarket(std::istream& in, std::string* error,
                                      FaultInjector* faults = nullptr);
std::optional<LaborMarket> ReadMarketFromFile(const std::string& path,
                                              std::string* error,
                                              FaultInjector* faults = nullptr);

/// Serializes an assignment as (worker, task) pairs of `market`.
void WriteAssignment(const LaborMarket& market, const Assignment& a,
                     std::ostream& out);
bool WriteAssignmentToFile(const LaborMarket& market, const Assignment& a,
                           const std::string& path,
                           std::string* error = nullptr);

/// Parses an assignment against `market`, resolving (worker, task) pairs
/// to edge ids. Fails on unknown pairs or infeasible results.
std::optional<Assignment> ReadAssignment(const LaborMarket& market,
                                         std::istream& in,
                                         std::string* error,
                                         FaultInjector* faults = nullptr);
std::optional<Assignment> ReadAssignmentFromFile(const LaborMarket& market,
                                                 const std::string& path,
                                                 std::string* error,
                                                 FaultInjector* faults = nullptr);

}  // namespace mbta

#endif  // MBTA_IO_MARKET_IO_H_
