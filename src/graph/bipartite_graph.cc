#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace mbta {

std::span<const Incidence> BipartiteGraph::LeftNeighbors(VertexId l) const {
  MBTA_CHECK(l < NumLeft());
  return {left_incidences_.data() + left_offsets_[l],
          left_offsets_[l + 1] - left_offsets_[l]};
}

std::span<const Incidence> BipartiteGraph::RightNeighbors(VertexId r) const {
  MBTA_CHECK(r < NumRight());
  return {right_incidences_.data() + right_offsets_[r],
          right_offsets_[r + 1] - right_offsets_[r]};
}

BipartiteGraph::CsrView BipartiteGraph::LeftCsr() const {
  return {left_offsets_, left_incidences_};
}

BipartiteGraph::CsrView BipartiteGraph::RightCsr() const {
  return {right_offsets_, right_incidences_};
}

EdgeId BipartiteGraph::FindEdge(VertexId l, VertexId r) const {
  MBTA_CHECK(l < NumLeft() && r < NumRight());
  if (LeftDegree(l) <= RightDegree(r)) {
    for (const Incidence& inc : LeftNeighbors(l)) {
      if (inc.vertex == r) return inc.edge;
    }
  } else {
    for (const Incidence& inc : RightNeighbors(r)) {
      if (inc.vertex == l) return inc.edge;
    }
  }
  return kInvalidEdge;
}

BipartiteGraphBuilder::BipartiteGraphBuilder(std::size_t num_left,
                                             std::size_t num_right)
    : num_left_(num_left), num_right_(num_right) {}

EdgeId BipartiteGraphBuilder::AddEdge(VertexId left, VertexId right) {
  MBTA_CHECK(left < num_left_);
  MBTA_CHECK(right < num_right_);
  const EdgeId id = static_cast<EdgeId>(lefts_.size());
  lefts_.push_back(left);
  rights_.push_back(right);
  return id;
}

BipartiteGraph BipartiteGraphBuilder::Build() {
  // Reject duplicates: sort packed (left, right) keys and look for an
  // adjacent repeat — O(E log E), no hash container involved.
  {
    std::vector<std::uint64_t> keys(lefts_.size());
    for (std::size_t e = 0; e < lefts_.size(); ++e) {
      keys[e] = (static_cast<std::uint64_t>(lefts_[e]) << 32) | rights_[e];
    }
    std::sort(keys.begin(), keys.end());
    const auto dup = std::adjacent_find(keys.begin(), keys.end());
    MBTA_CHECK_MSG(dup == keys.end(), "duplicate edge (%u, %u)",
                   static_cast<VertexId>(*dup >> 32),
                   static_cast<VertexId>(*dup & 0xffffffffu));
  }

  BipartiteGraph g;
  g.edge_left_ = lefts_;
  g.edge_right_ = rights_;

  // Counting sort into CSR, left side.
  g.left_offsets_.assign(num_left_ + 1, 0);
  for (VertexId l : lefts_) ++g.left_offsets_[l + 1];
  for (std::size_t i = 1; i <= num_left_; ++i) {
    g.left_offsets_[i] += g.left_offsets_[i - 1];
  }
  g.left_incidences_.resize(lefts_.size());
  {
    std::vector<std::size_t> cursor(g.left_offsets_.begin(),
                                    g.left_offsets_.end() - 1);
    for (std::size_t e = 0; e < lefts_.size(); ++e) {
      g.left_incidences_[cursor[lefts_[e]]++] = {rights_[e],
                                                 static_cast<EdgeId>(e)};
    }
  }

  // Right side.
  g.right_offsets_.assign(num_right_ + 1, 0);
  for (VertexId r : rights_) ++g.right_offsets_[r + 1];
  for (std::size_t i = 1; i <= num_right_; ++i) {
    g.right_offsets_[i] += g.right_offsets_[i - 1];
  }
  g.right_incidences_.resize(rights_.size());
  {
    std::vector<std::size_t> cursor(g.right_offsets_.begin(),
                                    g.right_offsets_.end() - 1);
    for (std::size_t e = 0; e < rights_.size(); ++e) {
      g.right_incidences_[cursor[rights_[e]]++] = {lefts_[e],
                                                   static_cast<EdgeId>(e)};
    }
  }

  lefts_.clear();
  rights_.clear();
  return g;
}

}  // namespace mbta
