#ifndef MBTA_GRAPH_BIPARTITE_GRAPH_H_
#define MBTA_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mbta {

/// Identifier types. Left vertices are workers and right vertices are tasks
/// throughout this repository, but the graph layer is agnostic.
using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// One incidence record in an adjacency list: the opposite endpoint plus
/// the global edge id (used to index per-edge attribute arrays kept by
/// higher layers).
struct Incidence {
  VertexId vertex;
  EdgeId edge;
};

/// An immutable bipartite graph in compressed-sparse-row form, indexed from
/// both sides. Edge ids are dense in [0, NumEdges()) and follow insertion
/// order, so callers can keep per-edge attributes in plain vectors.
///
/// Build with BipartiteGraphBuilder; the finished graph is cheap to move
/// and safe to share read-only across threads.
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  std::size_t NumLeft() const { return left_offsets_.empty() ? 0 : left_offsets_.size() - 1; }
  std::size_t NumRight() const { return right_offsets_.empty() ? 0 : right_offsets_.size() - 1; }
  std::size_t NumEdges() const { return edge_left_.size(); }

  /// Incidences of left vertex l (each holds the right endpoint).
  std::span<const Incidence> LeftNeighbors(VertexId l) const;
  /// Incidences of right vertex r (each holds the left endpoint).
  std::span<const Incidence> RightNeighbors(VertexId r) const;

  std::size_t LeftDegree(VertexId l) const { return LeftNeighbors(l).size(); }
  std::size_t RightDegree(VertexId r) const { return RightNeighbors(r).size(); }

  VertexId EdgeLeft(EdgeId e) const { return edge_left_[e]; }
  VertexId EdgeRight(EdgeId e) const { return edge_right_[e]; }

  /// Contiguous endpoint columns indexed by EdgeId (the graph's native
  /// SoA layout). Batched kernels stream these instead of calling the
  /// per-edge accessors so the endpoint loads stay cache-linear and
  /// auto-vectorizable; higher layers align their per-edge attribute
  /// columns (quality, benefit, value) with the same dense ids.
  std::span<const VertexId> EdgeLefts() const { return edge_left_; }
  std::span<const VertexId> EdgeRights() const { return edge_right_; }

  /// A whole side's adjacency as raw CSR arrays: incidences of vertex v
  /// live at incidences[offsets[v] .. offsets[v + 1]). Parallel phase
  /// loops (e.g. Hopcroft–Karp BFS layer expansion) slice this by index
  /// ranges instead of making one span call per vertex.
  struct CsrView {
    std::span<const std::size_t> offsets;    // size = side count + 1
    std::span<const Incidence> incidences;   // size = NumEdges()
  };
  CsrView LeftCsr() const;
  CsrView RightCsr() const;

  /// Looks up the edge between l and r; kInvalidEdge if absent.
  /// O(min degree) scan — fine for the sparse markets used here.
  EdgeId FindEdge(VertexId l, VertexId r) const;

 private:
  friend class BipartiteGraphBuilder;

  std::vector<std::size_t> left_offsets_;   // size NumLeft()+1
  std::vector<Incidence> left_incidences_;  // size NumEdges()
  std::vector<std::size_t> right_offsets_;  // size NumRight()+1
  std::vector<Incidence> right_incidences_;
  std::vector<VertexId> edge_left_;   // indexed by EdgeId
  std::vector<VertexId> edge_right_;
};

/// Accumulates edges, then produces the CSR graph. Duplicate edges are
/// rejected at Build() time (the labor-market model has at most one
/// eligibility edge per worker/task pair).
class BipartiteGraphBuilder {
 public:
  BipartiteGraphBuilder(std::size_t num_left, std::size_t num_right);

  /// Adds an edge and returns its id (insertion-ordered, dense).
  EdgeId AddEdge(VertexId left, VertexId right);

  std::size_t NumEdges() const { return lefts_.size(); }

  /// Finalizes into a CSR graph. The builder is left empty afterwards.
  BipartiteGraph Build();

 private:
  std::size_t num_left_;
  std::size_t num_right_;
  std::vector<VertexId> lefts_;
  std::vector<VertexId> rights_;
};

}  // namespace mbta

#endif  // MBTA_GRAPH_BIPARTITE_GRAPH_H_
