#ifndef MBTA_GEN_MARKET_GENERATOR_H_
#define MBTA_GEN_MARKET_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "market/labor_market.h"
#include "util/rng.h"

namespace mbta {

/// Knobs of the synthetic bipartite labor-market generator. All sampling
/// is driven by `seed`, so a config is a complete, reproducible dataset
/// description. Four presets (below) instantiate the evaluation datasets.
struct GeneratorConfig {
  std::string name = "synthetic";
  std::uint64_t seed = 1;

  std::size_t num_workers = 1000;
  std::size_t num_tasks = 1000;

  // Capacities: uniform integer in [min, max].
  int worker_capacity_min = 1;
  int worker_capacity_max = 4;
  int task_capacity_min = 1;
  int task_capacity_max = 3;

  // Eligibility graph: each worker is offered ~candidates_per_worker
  // distinct candidate tasks (Zipf-weighted by task rank when
  // task_popularity_skew > 0 — popular tasks are seen by more workers);
  // candidates that fail the skill/pay eligibility test are dropped.
  std::size_t candidates_per_worker = 30;
  double task_popularity_skew = 0.0;

  // Skills: `skill_dims`-dimensional non-negative vectors; entities draw a
  // cluster (specialization) and perturb its centroid. skill_dims == 0
  // disables skills entirely (every pair matches with strength 1).
  std::size_t skill_dims = 8;
  std::size_t skill_clusters = 4;
  double skill_noise = 0.25;

  // Worker economics.
  double reliability_beta_a = 4.0;  // reliability = 0.5 + 0.5·Beta(a, b)
  double reliability_beta_b = 2.0;
  double cost_mu = -1.5;            // unit cost ~ LogNormal(mu, sigma)
  double cost_sigma = 0.5;
  /// Correlation knob: worker cost is multiplied by
  /// (1 + skill_premium · (reliability − 0.5)/0.5), so reliable workers
  /// demand higher pay — the tension the mutual-benefit objective trades.
  double skill_premium = 1.0;
  double fatigue = 0.9;

  /// Number of distinct requesters tasks are spread over (uniformly).
  /// 0 means every task is posted by its own requester.
  std::size_t num_requesters = 0;

  // Task economics.
  double payment_mu = -0.5;         // payment ~ LogNormal(mu, sigma)
  double payment_sigma = 0.5;
  double value_multiplier_min = 1.5;  // value = payment · U[min, max]
  double value_multiplier_max = 4.0;
  double difficulty_max = 0.8;

  // Edge model.
  EdgeModelParams edge_model;
};

/// Materializes the market described by the config.
LaborMarket GenerateMarket(const GeneratorConfig& config);

/// The persistent side of a market: a worker population plus the skill
/// centroids task batches must be drawn against. Lets callers (e.g. the
/// multi-round platform simulator) keep workers fixed while posting fresh
/// task batches each round.
struct WorkerPopulation {
  std::vector<Worker> workers;
  std::vector<SkillVector> skill_centroids;
};

/// Draws the worker population (and skill centroids) of a config.
WorkerPopulation DrawWorkerPopulation(const GeneratorConfig& config,
                                      Rng& rng);

/// Draws a fresh task batch per the config and connects it to an existing
/// population. GenerateMarket(config) == DrawWorkerPopulation followed by
/// DrawMarketForPopulation on the same RNG stream.
LaborMarket DrawMarketForPopulation(const GeneratorConfig& config,
                                    const WorkerPopulation& population,
                                    Rng& rng);

/// Synthetic-uniform: no skew, mild skills. The neutral dataset.
GeneratorConfig UniformConfig(std::size_t workers, std::size_t tasks,
                              std::uint64_t seed);

/// Synthetic-zipf: heavy task-popularity skew (s = 1.2) — a few hot tasks
/// attract most of the labor supply.
GeneratorConfig ZipfConfig(std::size_t workers, std::size_t tasks,
                           std::uint64_t seed);

/// MTurk-like microtask substitute: many cheap redundant-labeling tasks,
/// high task capacities, low skill barriers. See DESIGN.md (dataset
/// substitution) for what this stands in for and why.
GeneratorConfig MTurkLikeConfig(std::size_t workers, std::uint64_t seed);

/// Upwork-like freelance substitute: fewer high-value tasks, tight
/// capacities, strong skill clustering and wage dispersion.
GeneratorConfig UpworkLikeConfig(std::size_t workers, std::uint64_t seed);

/// Descriptive statistics of a market (Table 1).
struct MarketStats {
  std::size_t num_workers = 0;
  std::size_t num_tasks = 0;
  std::size_t num_edges = 0;
  double avg_worker_degree = 0.0;
  double max_worker_degree = 0.0;
  double avg_task_degree = 0.0;
  double max_task_degree = 0.0;
  double task_degree_gini = 0.0;  // skew of labor supply across tasks
  std::int64_t total_worker_capacity = 0;
  std::int64_t total_task_capacity = 0;
  double avg_payment = 0.0;
  double avg_quality = 0.0;
};

MarketStats ComputeStats(const LaborMarket& market);

}  // namespace mbta

#endif  // MBTA_GEN_MARKET_GENERATOR_H_
