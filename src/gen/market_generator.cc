#include "gen/market_generator.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/distribution.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mbta {

namespace {

/// Draws a sparse skill vector around one of `centroids`; empty if the
/// market has no skill dimensions.
SkillVector DrawSkills(Rng& rng, const std::vector<SkillVector>& centroids,
                       double noise) {
  if (centroids.empty()) return {};
  const SkillVector& c = centroids[rng.NextBounded(centroids.size())];
  SkillVector v(c.size());
  for (std::size_t d = 0; d < c.size(); ++d) {
    v[d] = std::max(0.0, c[d] + noise * rng.NextGaussian());
  }
  return v;
}

std::vector<SkillVector> DrawCentroids(Rng& rng, std::size_t clusters,
                                       std::size_t dims) {
  std::vector<SkillVector> centroids;
  if (dims == 0) return centroids;
  centroids.reserve(clusters);
  for (std::size_t c = 0; c < clusters; ++c) {
    SkillVector v(dims, 0.0);
    // Each cluster is strong on a random half of the dimensions.
    for (std::size_t d = 0; d < dims; ++d) {
      v[d] = rng.NextBool(0.5) ? rng.NextDouble(0.6, 1.0)
                               : rng.NextDouble(0.0, 0.2);
    }
    centroids.push_back(std::move(v));
  }
  return centroids;
}

}  // namespace

WorkerPopulation DrawWorkerPopulation(const GeneratorConfig& config,
                                      Rng& rng) {
  MBTA_CHECK(config.num_workers > 0);
  MBTA_CHECK(config.worker_capacity_min >= 1 &&
             config.worker_capacity_min <= config.worker_capacity_max);
  WorkerPopulation population;
  population.skill_centroids =
      DrawCentroids(rng, config.skill_clusters, config.skill_dims);

  std::vector<Worker>& workers = population.workers;
  workers.reserve(config.num_workers);
  for (std::size_t i = 0; i < config.num_workers; ++i) {
    Worker w;
    w.id = static_cast<WorkerId>(i);
    w.capacity = static_cast<int>(rng.NextInt(config.worker_capacity_min,
                                              config.worker_capacity_max));
    w.reliability =
        0.5 + 0.5 * rng.NextBeta(config.reliability_beta_a,
                                 config.reliability_beta_b);
    const double premium =
        1.0 + config.skill_premium * (w.reliability - 0.5) / 0.5;
    w.unit_cost = LogNormal(rng, config.cost_mu, config.cost_sigma) * premium;
    w.fatigue = config.fatigue;
    w.skills =
        DrawSkills(rng, population.skill_centroids, config.skill_noise);
    workers.push_back(std::move(w));
  }
  return population;
}

LaborMarket DrawMarketForPopulation(const GeneratorConfig& config,
                                    const WorkerPopulation& population,
                                    Rng& rng) {
  MBTA_CHECK(config.num_tasks > 0);
  MBTA_CHECK(config.task_capacity_min >= 1 &&
             config.task_capacity_min <= config.task_capacity_max);
  const std::vector<Worker>& workers = population.workers;
  const std::vector<SkillVector>& centroids = population.skill_centroids;

  std::vector<Task> tasks;
  tasks.reserve(config.num_tasks);
  for (std::size_t i = 0; i < config.num_tasks; ++i) {
    Task t;
    t.id = static_cast<TaskId>(i);
    t.capacity = static_cast<int>(
        rng.NextInt(config.task_capacity_min, config.task_capacity_max));
    t.payment = LogNormal(rng, config.payment_mu, config.payment_sigma);
    t.value = t.payment * rng.NextDouble(config.value_multiplier_min,
                                         config.value_multiplier_max);
    t.difficulty = rng.NextDouble(0.0, config.difficulty_max);
    t.requester = config.num_requesters == 0
                      ? static_cast<std::uint32_t>(i)
                      : static_cast<std::uint32_t>(
                            rng.NextBounded(config.num_requesters));
    t.required_skills = DrawSkills(rng, centroids, config.skill_noise);
    tasks.push_back(std::move(t));
  }

  LaborMarketBuilder builder;
  builder.SetName(config.name);
  for (const Worker& w : workers) builder.AddWorker(w);
  for (const Task& t : tasks) builder.AddTask(t);

  // Candidate sampling: each worker sees ~candidates_per_worker tasks,
  // Zipf-weighted toward low task indices when skewed (task index = rank
  // of popularity). This keeps generation O(W · k) instead of O(W · T).
  const std::size_t k =
      std::min(config.candidates_per_worker, config.num_tasks);
  ZipfSampler popularity(config.num_tasks, config.task_popularity_skew);

  for (std::size_t w = 0; w < workers.size(); ++w) {
    // Edge order comes from the sampling loop, never from this set.
    // mbta-lint: unordered-ok(membership-only rejection filter)
    std::unordered_set<std::size_t> chosen;
    std::size_t attempts = 0;
    const std::size_t max_attempts = 20 * k + 50;
    while (chosen.size() < k && attempts < max_attempts) {
      ++attempts;
      const std::size_t t = config.task_popularity_skew > 0.0
                                ? popularity.Sample(rng)
                                : rng.NextBounded(config.num_tasks);
      if (!chosen.insert(t).second) continue;
      if (IsEligible(workers[w], tasks[t], config.edge_model)) {
        builder.AddEdge(
            static_cast<WorkerId>(w), static_cast<TaskId>(t),
            ComputeEdgeAttributes(workers[w], tasks[t], config.edge_model));
      }
    }
  }

  return builder.Build();
}

LaborMarket GenerateMarket(const GeneratorConfig& config) {
  Rng rng(config.seed);
  const WorkerPopulation population = DrawWorkerPopulation(config, rng);
  return DrawMarketForPopulation(config, population, rng);
}

GeneratorConfig UniformConfig(std::size_t workers, std::size_t tasks,
                              std::uint64_t seed) {
  GeneratorConfig c;
  c.name = "synth-uniform";
  c.seed = seed;
  c.num_workers = workers;
  c.num_tasks = tasks;
  return c;
}

GeneratorConfig ZipfConfig(std::size_t workers, std::size_t tasks,
                           std::uint64_t seed) {
  GeneratorConfig c;
  c.name = "synth-zipf";
  c.seed = seed;
  c.num_workers = workers;
  c.num_tasks = tasks;
  c.task_popularity_skew = 1.2;
  return c;
}

GeneratorConfig MTurkLikeConfig(std::size_t workers, std::uint64_t seed) {
  GeneratorConfig c;
  c.name = "mturk-like";
  c.seed = seed;
  c.num_workers = workers;
  c.num_tasks = workers * 2;  // task-rich microtask batches
  c.worker_capacity_min = 2;
  c.worker_capacity_max = 8;
  c.task_capacity_min = 3;  // redundant labeling
  c.task_capacity_max = 5;
  c.candidates_per_worker = 40;
  c.task_popularity_skew = 0.8;  // HIT groups have skewed popularity
  c.skill_dims = 4;              // low skill barriers
  c.skill_clusters = 2;
  c.edge_model.skill_threshold = 0.1;
  c.cost_mu = -3.0;  // cheap microtask labor
  c.cost_sigma = 0.4;
  c.payment_mu = -2.0;  // cents-scale payments
  c.payment_sigma = 0.4;
  c.difficulty_max = 0.8;
  c.fatigue = 0.95;
  return c;
}

GeneratorConfig UpworkLikeConfig(std::size_t workers, std::uint64_t seed) {
  GeneratorConfig c;
  c.name = "upwork-like";
  c.seed = seed;
  c.num_workers = workers;
  c.num_tasks = std::max<std::size_t>(workers / 4, 1);  // worker-rich
  c.worker_capacity_min = 1;
  c.worker_capacity_max = 3;
  c.task_capacity_min = 1;  // one or two hires per job
  c.task_capacity_max = 2;
  c.candidates_per_worker = 25;
  c.task_popularity_skew = 0.5;
  c.skill_dims = 16;  // specialized skills
  c.skill_clusters = 8;
  c.skill_noise = 0.15;
  c.edge_model.skill_threshold = 0.35;
  c.edge_model.interest_weight = 1.0;
  c.cost_mu = 1.0;  // real wages
  c.cost_sigma = 0.75;
  c.skill_premium = 2.0;
  c.payment_mu = 1.6;
  c.payment_sigma = 0.75;
  c.value_multiplier_min = 2.0;
  c.value_multiplier_max = 6.0;
  c.difficulty_max = 0.5;
  c.fatigue = 0.8;
  return c;
}

MarketStats ComputeStats(const LaborMarket& market) {
  MarketStats s;
  s.num_workers = market.NumWorkers();
  s.num_tasks = market.NumTasks();
  s.num_edges = market.NumEdges();

  std::vector<double> task_degrees;
  task_degrees.reserve(market.NumTasks());
  for (TaskId t = 0; t < market.NumTasks(); ++t) {
    const double d = static_cast<double>(market.graph().RightDegree(t));
    task_degrees.push_back(d);
    s.max_task_degree = std::max(s.max_task_degree, d);
    s.total_task_capacity += market.task(t).capacity;
    s.avg_payment += market.task(t).payment;
  }
  for (WorkerId w = 0; w < market.NumWorkers(); ++w) {
    const double d = static_cast<double>(market.graph().LeftDegree(w));
    s.max_worker_degree = std::max(s.max_worker_degree, d);
    s.total_worker_capacity += market.worker(w).capacity;
  }
  for (EdgeId e = 0; e < market.NumEdges(); ++e) {
    s.avg_quality += market.Quality(e);
  }
  if (s.num_workers > 0) {
    s.avg_worker_degree =
        static_cast<double>(s.num_edges) / static_cast<double>(s.num_workers);
  }
  if (s.num_tasks > 0) {
    s.avg_task_degree =
        static_cast<double>(s.num_edges) / static_cast<double>(s.num_tasks);
    s.avg_payment /= static_cast<double>(s.num_tasks);
  }
  if (s.num_edges > 0) {
    s.avg_quality /= static_cast<double>(s.num_edges);
  }
  s.task_degree_gini = GiniCoefficient(task_degrees);
  return s;
}

}  // namespace mbta
