/// Diffs two structured bench records written by `--json` (see
/// bench/bench_util.h for the schema) and reports per-row wall-clock
/// ratios and counter drift. Exit status is the perf-regression gate:
///
///   0  every matched row is within the threshold
///   1  a regression: wall time beyond threshold, counter drift, or rows
///      present in the baseline but missing from the candidate
///   2  usage / file / parse error
///
/// Usage:
///   bench_compare <baseline.json> <candidate.json>
///       [--threshold 0.5] [--min-ms 0.5]
///
/// `--threshold f` flags a row whose candidate wall time exceeds the
/// baseline by more than a factor of (1 + f). The default is deliberately
/// generous: the smoke workloads are small, so wall times carry scheduler
/// noise. `--min-ms m` skips the wall comparison entirely for rows whose
/// baseline time is below m milliseconds (noise floor) — their counters
/// are still compared, and counters are exact: any drift is flagged,
/// because the solvers are deterministic and a counter change that did
/// not come with a code change means the build differs in behavior, not
/// speed.
///
/// Histograms (schema v2 rows) are diffed the same way as counters:
/// boundaries and bucket counts must match exactly, except keys under the
/// "latency/" prefix, which bucket wall-clock times and are therefore
/// noise by construction. Schema v1 records (no histograms) still load;
/// a v1 baseline against a v2 candidate compares the shared fields only.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/json_value.h"
#include "util/table.h"

namespace mbta {
namespace {

struct HistogramShape {
  std::vector<double> boundaries;
  std::vector<double> counts;

  bool operator==(const HistogramShape& other) const {
    return boundaries == other.boundaries && counts == other.counts;
  }
};

struct Row {
  std::string key;  // experiment + params + solver, the match identity
  double wall_ms = -1.0;
  std::map<std::string, double> counters;
  std::map<std::string, HistogramShape> histograms;
};

/// Time-valued histogram keys are excluded from the exact diff for the
/// same reason wall_ms is thresholded: their buckets move with scheduler
/// noise, not with behavior.
bool IsLatencyKey(const std::string& key) {
  return key.rfind("latency/", 0) == 0;
}

/// Flattens one record's rows into match-keyed entries. Returns false on
/// schema mismatch.
bool LoadRecord(const char* path, std::vector<Row>* rows,
                std::string* error) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    *error = std::string("cannot open ") + path;
    return false;
  }
  std::string text;
  char buffer[1 << 16];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);

  JsonValue doc;
  if (!JsonValue::Parse(text, &doc, error)) {
    *error = std::string(path) + ": " + *error;
    return false;
  }
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    *error = std::string(path) + ": missing schema_version";
    return false;
  }
  // v1 rows simply lack the "histograms" object; everything else this
  // tool reads is layout-identical, so both versions load here.
  if (version->number_value != 1 && version->number_value != 2) {
    *error = std::string(path) + ": unsupported schema_version";
    return false;
  }
  const std::string experiment(
      doc.Find("experiment") != nullptr
          ? doc.Find("experiment")->StringOr("?")
          : "?");
  const JsonValue* json_rows = doc.Find("rows");
  if (json_rows == nullptr || !json_rows->is_array()) {
    *error = std::string(path) + ": missing rows array";
    return false;
  }

  for (const JsonValue& json_row : json_rows->array_items) {
    Row row;
    row.key = experiment;
    if (const JsonValue* params = json_row.Find("params")) {
      for (const auto& [key, value] : params->object_items) {
        row.key += " " + key + "=" + std::string(value.StringOr("?"));
      }
    }
    if (const JsonValue* solver = json_row.Find("solver")) {
      row.key += " solver=" + std::string(solver->StringOr("?"));
    }
    if (const JsonValue* metrics = json_row.Find("metrics")) {
      if (const JsonValue* wall = metrics->Find("wall_ms")) {
        row.wall_ms = wall->NumberOr(-1.0);
      }
    }
    if (const JsonValue* counters = json_row.Find("counters")) {
      for (const auto& [key, value] : counters->object_items) {
        row.counters[key] = value.NumberOr(0.0);
      }
    }
    if (const JsonValue* histograms = json_row.Find("histograms")) {
      for (const auto& [key, value] : histograms->object_items) {
        if (IsLatencyKey(key)) continue;
        HistogramShape shape;
        if (const JsonValue* boundaries = value.Find("boundaries")) {
          for (const JsonValue& b : boundaries->array_items) {
            shape.boundaries.push_back(b.NumberOr(0.0));
          }
        }
        if (const JsonValue* counts = value.Find("counts")) {
          for (const JsonValue& c : counts->array_items) {
            shape.counts.push_back(c.NumberOr(0.0));
          }
        }
        row.histograms[key] = std::move(shape);
      }
    }
    rows->push_back(std::move(row));
  }
  return true;
}

}  // namespace
}  // namespace mbta

int main(int argc, char** argv) {
  using namespace mbta;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <candidate.json> "
                 "[--threshold f] [--min-ms m]\n",
                 argv[0]);
    return 2;
  }
  double threshold = 0.5;
  double min_ms = 0.5;
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--threshold") {
      threshold = std::atof(argv[i + 1]);
    } else if (flag == "--min-ms") {
      min_ms = std::atof(argv[i + 1]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }

  std::vector<Row> baseline, candidate;
  std::string error;
  if (!LoadRecord(argv[1], &baseline, &error) ||
      !LoadRecord(argv[2], &candidate, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  std::map<std::string, const Row*> candidate_by_key;
  for (const Row& row : candidate) candidate_by_key[row.key] = &row;

  int regressions = 0;
  int compared = 0;
  int skipped_noise = 0;
  Table table({"row", "base ms", "cand ms", "ratio", "verdict"});
  for (const Row& base : baseline) {
    const auto it = candidate_by_key.find(base.key);
    if (it == candidate_by_key.end()) {
      table.AddRow({base.key, Table::Num(base.wall_ms), "-", "-", "MISSING"});
      ++regressions;
      continue;
    }
    const Row& cand = *it->second;

    // Counters are deterministic: any drift means the two builds do
    // different work, which is a finding regardless of wall time.
    std::string counter_drift;
    for (const auto& [key, base_value] : base.counters) {
      const auto cit = cand.counters.find(key);
      const double cand_value =
          cit != cand.counters.end() ? cit->second : -1.0;
      if (cand_value != base_value) {
        counter_drift = key;
        break;
      }
    }
    if (counter_drift.empty() &&
        cand.counters.size() != base.counters.size()) {
      counter_drift = "(counter set differs)";
    }
    if (!counter_drift.empty()) {
      table.AddRow({base.key, Table::Num(base.wall_ms),
                    Table::Num(cand.wall_ms), "-",
                    "COUNTER DRIFT: " + counter_drift});
      ++regressions;
      continue;
    }

    // Histogram bucket counts are as deterministic as counters. Only
    // compared when both records carry them, so a schema-v1 baseline
    // still gates a v2 candidate on the shared fields.
    std::string histogram_drift;
    if (!base.histograms.empty() && !cand.histograms.empty()) {
      for (const auto& [key, base_shape] : base.histograms) {
        const auto hit = cand.histograms.find(key);
        if (hit == cand.histograms.end() || !(hit->second == base_shape)) {
          histogram_drift = key;
          break;
        }
      }
      if (histogram_drift.empty() &&
          cand.histograms.size() != base.histograms.size()) {
        histogram_drift = "(histogram set differs)";
      }
    }
    if (!histogram_drift.empty()) {
      table.AddRow({base.key, Table::Num(base.wall_ms),
                    Table::Num(cand.wall_ms), "-",
                    "HISTOGRAM DRIFT: " + histogram_drift});
      ++regressions;
      continue;
    }

    if (base.wall_ms < 0.0 || cand.wall_ms < 0.0) continue;
    if (base.wall_ms < min_ms) {
      ++skipped_noise;
      continue;
    }
    ++compared;
    const double ratio = cand.wall_ms / base.wall_ms;
    const bool slow = ratio > 1.0 + threshold;
    if (slow) ++regressions;
    table.AddRow({base.key, Table::Num(base.wall_ms),
                  Table::Num(cand.wall_ms), Table::Num(ratio),
                  slow ? "REGRESSION" : "ok"});
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "compared %d rows (threshold %.0f%%, %d below %.2fms noise floor "
      "skipped), %d regression(s)\n",
      compared, threshold * 100.0, skipped_noise, min_ms, regressions);
  return regressions == 0 ? 0 : 1;
}
