// mbta_lint — the repository's determinism & safety analyzer.
//
// A dependency-free, token-level checker for repo-specific invariants the
// compiler cannot see: per-file rules R1–R9 plus whole-program passes over
// a repo index — determinism taint (R10), lock discipline (R11), a
// call-graph-aware R9, and waiver hygiene (R12) with a committed ledger
// (rule catalog in tools/lint_engine.h and CONTRIBUTING.md, "Static
// analysis"). Intended use:
//
//   build/tools/mbta_lint                        # full pass stack
//   build/tools/mbta_lint src/core foo.cc        # explicit files/dirs
//   build/tools/mbta_lint --json lint.json       # machine-readable report
//   build/tools/mbta_lint --sarif lint.sarif     # GitHub code scanning
//   build/tools/mbta_lint --ledger LINT_LEDGER.json          # drift gate
//   build/tools/mbta_lint --update-ledger LINT_LEDGER.json   # regenerate
//   build/tools/mbta_lint --fix src               # mechanical R6 fixes
//
// Exit codes: 0 clean, 1 violations or ledger drift, 2 usage or I/O error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "tools/lint_engine.h"
#include "tools/lint_passes.h"

namespace {

constexpr const char* kUsage =
    "usage: mbta_lint [options] [paths...]\n"
    "  Analyzes .h/.cc files under each path (default: src tools bench "
    "tests).\n"
    "  --json <path>           write a structured violation report\n"
    "  --sarif <path>          write a SARIF 2.1.0 report (code scanning)\n"
    "  --ledger <path>         fail if the committed waiver ledger drifts\n"
    "  --update-ledger <path>  regenerate the waiver ledger and exit\n"
    "  --fix                   apply mechanical fixes (include guards,\n"
    "                          missing std includes) to library headers\n";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  std::string sarif_path;
  std::string ledger_path;
  std::string update_ledger_path;
  bool fix = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](std::string* dst) {
      if (i + 1 >= argc) {
        std::cerr << "mbta_lint: " << arg << " needs a path\n" << kUsage;
        return false;
      }
      *dst = argv[++i];
      return true;
    };
    if (arg == "--json") {
      if (!flag_value(&json_path)) return 2;
    } else if (arg == "--sarif") {
      if (!flag_value(&sarif_path)) return 2;
    } else if (arg == "--ledger") {
      if (!flag_value(&ledger_path)) return 2;
    } else if (arg == "--update-ledger") {
      if (!flag_value(&update_ledger_path)) return 2;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mbta_lint: unknown flag '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench", "tests"};

  std::vector<std::string> errors;
  const std::vector<std::string> files =
      mbta::lint::CollectFiles(paths, &errors);
  for (const std::string& e : errors) {
    std::cerr << "mbta_lint: " << e << "\n";
  }
  if (!errors.empty()) return 2;
  if (files.empty()) {
    std::cerr << "mbta_lint: no .h/.cc files found under given paths\n";
    return 2;
  }

  std::vector<mbta::lint::SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    mbta::lint::SourceFile sf;
    sf.path = file;
    if (!ReadFile(file, &sf.content)) {
      std::cerr << "mbta_lint: cannot read " << file << "\n";
      return 2;
    }
    sources.push_back(std::move(sf));
  }

  if (fix) {
    int fixed = 0;
    for (const mbta::lint::SourceFile& sf : sources) {
      const std::string after =
          mbta::lint::ApplyMechanicalFixes(sf.path, sf.content);
      if (after == sf.content) continue;
      if (!WriteFile(sf.path, after)) {
        std::cerr << "mbta_lint: cannot write " << sf.path << "\n";
        return 2;
      }
      std::cout << "fixed: " << sf.path << "\n";
      ++fixed;
    }
    std::cout << "mbta_lint: " << fixed << " file(s) fixed\n";
    return 0;
  }

  const mbta::lint::AnalyzeResult result = mbta::lint::AnalyzeRepo(sources);
  const std::vector<mbta::lint::Violation>& all = result.violations;

  if (!update_ledger_path.empty()) {
    if (!WriteFile(update_ledger_path,
                   mbta::lint::LedgerToJson(result.waivers))) {
      std::cerr << "mbta_lint: cannot write " << update_ledger_path << "\n";
      return 2;
    }
    std::cout << "mbta_lint: wrote " << result.waivers.size()
              << " waiver(s) to " << update_ledger_path << "\n";
    return 0;
  }

  for (const mbta::lint::Violation& v : all) {
    std::cout << v.file << ":" << v.line << ": " << v.rule << ": "
              << v.message << "\n";
  }

  std::vector<std::string> drift;
  if (!ledger_path.empty()) {
    std::string text;
    if (!ReadFile(ledger_path, &text)) {
      std::cerr << "mbta_lint: cannot read ledger " << ledger_path << "\n";
      return 2;
    }
    std::vector<mbta::lint::LedgerEntry> committed;
    std::string error;
    if (!mbta::lint::ParseLedgerJson(text, &committed, &error)) {
      std::cerr << "mbta_lint: bad ledger " << ledger_path << ": " << error
                << "\n";
      return 2;
    }
    drift = mbta::lint::DiffLedger(committed, result.waivers);
    for (const std::string& d : drift) {
      std::cout << "ledger: " << d << "\n";
    }
  }

  if (!json_path.empty()) {
    mbta::JsonWriter w;
    w.BeginObject();
    w.Key("schema_version");
    w.Number(std::int64_t{2});
    w.Key("tool");
    w.String("mbta_lint");
    w.Key("files_scanned");
    w.Number(static_cast<std::uint64_t>(files.size()));
    w.Key("violation_count");
    w.Number(static_cast<std::uint64_t>(all.size()));
    w.Key("violations");
    w.BeginArray();
    for (const mbta::lint::Violation& v : all) {
      w.BeginObject();
      w.Key("file");
      w.String(v.file);
      w.Key("line");
      w.Number(std::int64_t{v.line});
      w.Key("rule");
      w.String(v.rule);
      w.Key("message");
      w.String(v.message);
      w.EndObject();
    }
    w.EndArray();
    w.Key("waiver_count");
    w.Number(static_cast<std::uint64_t>(result.waivers.size()));
    w.EndObject();
    if (!WriteFile(json_path, w.TakeString() + "\n")) {
      std::cerr << "mbta_lint: cannot write " << json_path << "\n";
      return 2;
    }
  }

  if (!sarif_path.empty()) {
    if (!WriteFile(sarif_path, mbta::lint::SarifReport(all))) {
      std::cerr << "mbta_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
  }

  if (!all.empty() || !drift.empty()) {
    std::cerr << "mbta_lint: " << all.size() << " violation(s), "
              << drift.size() << " ledger discrepancy(ies) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  return 0;
}
