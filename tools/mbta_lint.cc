// mbta_lint — the repository's determinism & safety linter.
//
// A dependency-free, token-level checker for repo-specific invariants the
// compiler cannot see (rule catalog in tools/lint_engine.h and
// CONTRIBUTING.md, "Static analysis"). Intended use:
//
//   build/tools/mbta_lint                      # lints src tools bench tests
//   build/tools/mbta_lint src/core foo.cc     # explicit files/dirs
//   build/tools/mbta_lint --json lint.json    # machine-readable report
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_writer.h"
#include "tools/lint_engine.h"

namespace {

constexpr const char* kUsage =
    "usage: mbta_lint [--json <path>] [paths...]\n"
    "  Lints .h/.cc files under each path (default: src tools bench "
    "tests).\n"
    "  --json <path>  also write a structured report\n";

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "mbta_lint: --json needs a path\n" << kUsage;
        return 2;
      }
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mbta_lint: unknown flag '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench", "tests"};

  std::vector<std::string> errors;
  const std::vector<std::string> files =
      mbta::lint::CollectFiles(paths, &errors);
  for (const std::string& e : errors) {
    std::cerr << "mbta_lint: " << e << "\n";
  }
  if (!errors.empty()) return 2;
  if (files.empty()) {
    std::cerr << "mbta_lint: no .h/.cc files found under given paths\n";
    return 2;
  }

  std::vector<mbta::lint::Violation> all;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << "mbta_lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<mbta::lint::Violation> v =
        mbta::lint::LintFile(file, buf.str());
    all.insert(all.end(), v.begin(), v.end());
  }

  for (const mbta::lint::Violation& v : all) {
    std::cout << v.file << ":" << v.line << ": " << v.rule << ": "
              << v.message << "\n";
  }

  if (!json_path.empty()) {
    mbta::JsonWriter w;
    w.BeginObject();
    w.Key("schema_version");
    w.Number(std::int64_t{1});
    w.Key("tool");
    w.String("mbta_lint");
    w.Key("files_scanned");
    w.Number(static_cast<std::uint64_t>(files.size()));
    w.Key("violation_count");
    w.Number(static_cast<std::uint64_t>(all.size()));
    w.Key("violations");
    w.BeginArray();
    for (const mbta::lint::Violation& v : all) {
      w.BeginObject();
      w.Key("file");
      w.String(v.file);
      w.Key("line");
      w.Number(std::int64_t{v.line});
      w.Key("rule");
      w.String(v.rule);
      w.Key("message");
      w.String(v.message);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "mbta_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << w.str() << "\n";
  }

  if (!all.empty()) {
    std::cerr << "mbta_lint: " << all.size() << " violation(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  return 0;
}
