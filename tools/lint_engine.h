#ifndef MBTA_TOOLS_LINT_ENGINE_H_
#define MBTA_TOOLS_LINT_ENGINE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tools/lint_index.h"

namespace mbta::lint {

/// One rule violation, formatted by the driver as
/// `file:line: rule-id: message`.
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;     // "R1" .. "R12"
  std::string message;  // human-readable, names the waiver tag
};

/// Rule catalog (see CONTRIBUTING.md, "Static analysis"):
///
///   R1  no std::unordered_map / std::unordered_set in library code (and no
///       range-for / .begin() iteration over one) — iteration order is
///       nondeterministic and silently changes tie-breaking-sensitive
///       greedy results. Waiver: unordered-ok.
///   R2  no nondeterminism sources in solver code: rand/srand/drand48,
///       std::random_device, time()/clock()/gettimeofday/localtime/gmtime,
///       std::chrono::system_clock. All randomness flows through seeded
///       mbta::Rng (src/util/rng.h); src/util and src/obs are exempt
///       (that is where the RNG and the timers live). Waiver: nondet-ok.
///   R3  no ==/!= against floating-point literals outside src/util's
///       tolerance helpers. Waiver: float-eq-ok.
///   R4  no std::cout / printf / puts / fprintf(stdout, ...) in library
///       code (src/); CLI, bench, tools and tests are exempt.
///       Waiver: stdout-ok.
///   R5  counter/gauge keys and phase paths passed as string literals to
///       CounterRegistry / PhaseTimings APIs must match the slash-path
///       grammar segment(/segment)* with segment = [a-z0-9_]+; ScopedPhase
///       labels are single segments (nesting builds the path). Fault-point
///       names passed to FaultInjector APIs / MaybeFail follow the same
///       slash-path grammar, as do trace span/instant names (ScopedSpan,
///       Tracer::BeginSpan/Instant/RegisterThread) and span-arg keys
///       (ScopedSpan::Arg) — traces are diffed by name, so names are
///       stable identifiers, not prose. Waiver: name-ok.
///   R6  every .h under src/ carries an include guard (or #pragma once)
///       and directly includes the std headers for the std types it names
///       (lightweight IWYU over a curated type list). Waiver: include-ok.
///   R7  no raw monotonic-clock reads or sleeps in library code outside
///       src/util and src/obs: std::chrono::steady_clock /
///       high_resolution_clock and sleep_for/sleep_until bypass the
///       injectable Clock seam (src/util/clock.h), making deadline code
///       untestable with FakeClock. Waiver: clock-ok.
///   R8  no raw threading primitives in library code outside src/util:
///       std::thread, std::jthread and std::async bypass the
///       deterministic ThreadPool seam (src/util/thread_pool.h), whose
///       fixed contiguous slicing is what makes the parallel solvers'
///       byte-identical-at-any-thread-count contract checkable.
///       Waiver: thread-ok.
///   R9  no heap allocation in solver inner loops: `new`, std::make_unique
///       / make_shared, and standard-container construction (vector,
///       string, map, set, deque, queue, priority_queue, unordered_*, ...)
///       inside for/while bodies in src/core and src/flow. The
///       whole-program pass extends this through the call graph: a call
///       site inside such a loop whose callee (transitively) allocates is
///       flagged too, with the chain printed. Per-iteration allocation is
///       what the arena-scratch overhaul removed from the hot paths (see
///       CONTRIBUTING.md, "Memory & allocation"); scratch belongs in the
///       solve's Arena or hoisted outside the loop. Cold paths waive
///       with: alloc-ok.
///
/// Whole-program rules (tools/lint_passes.h, over the repo index):
///
///   R10 determinism taint: no call path from a solver entry point (any
///       function defined in src/core or src/flow) to a nondeterminism
///       sink — everything R2/R7 ban, plus iteration over a waived
///       unordered container. The finding prints the complete chain.
///       Waiver: taint-ok on the sink line (neutralizes the sink) or on
///       an intermediate frame's definition line (barrier: paths through
///       that function are trusted).
///   R11 lock discipline, cross-TU: a field declared MBTA_GUARDED_BY(mu)
///       must only be written in functions that hold `mu` (MutexLock /
///       MBTA_OBS_LOCK / std::*_lock / .Lock() earlier in the body),
///       declare MBTA_REQUIRES(mu), or are ctors/dtors/NO_TSA; REQUIRES
///       contracts must hold at precisely-resolved call sites; and two
///       mutexes of the same class must be acquired in one global order
///       across all TUs. Waiver: lock-ok.
///   R12 waiver hygiene: every `// mbta-lint:` comment in library code
///       must carry a known tag, a non-empty reason, and actually
///       suppress a finding — an unused waiver is itself an error, so
///       suppressions can only shrink without review. No waiver (fix the
///       comment or delete it).
///
/// A waiver is a comment `// mbta-lint: <tag>(<reason>)` on the violating
/// line or the line directly above it; the reason must be non-empty.

/// (line, tag) pairs of waivers that actually suppressed a finding.
/// Filled by the engine and the whole-program passes; the unused-waiver
/// rule (R12) reports every parsed waiver not in this set.
using WaiverUseSet = std::set<std::pair<int, std::string>>;

/// Lints one file's contents. `path` is used for scoping and reporting
/// only; no filesystem access happens here, so tests can feed snippets.
std::vector<Violation> LintFile(std::string_view path,
                                std::string_view content);

/// As above, but runs over an already-lexed file and records which
/// waivers fired into `used` (may be nullptr). This is the entry point
/// AnalyzeRepo uses so each file is lexed exactly once.
std::vector<Violation> LintLexed(std::string_view path, const LexResult& lex,
                                 WaiverUseSet* used);

/// The curated IWYU table R6 checks against: std name -> acceptable
/// providing headers (the first entry is canonical; --fix inserts it).
const std::map<std::string, std::vector<std::string>>& StdIncludeProviders();

/// True iff `key` matches the observability slash-path grammar
/// `[a-z0-9_]+(/[a-z0-9_]+)*` (CONTRIBUTING.md, "Observability").
bool IsValidCounterKey(std::string_view key);

/// True iff `label` is a single lower_snake_case path segment.
bool IsValidPhaseLabel(std::string_view label);

/// True iff `point`'s first path segment is a registered fault-point
/// namespace (CONTRIBUTING.md, "Robustness"): flow, io, solver, or
/// service. R5 enforces this in library code on top of the slash-path
/// grammar, so a typo'd namespace ("serivce/wal/append") cannot silently
/// create a fault point no test will ever arm.
bool IsRegisteredFaultNamespace(std::string_view point);

/// Recursively collects .h/.cc files under each of `paths` (a path may
/// also name a single file). Returns a deterministically sorted list;
/// unknown paths are reported in `errors`.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths,
                                      std::vector<std::string>* errors);

}  // namespace mbta::lint

#endif  // MBTA_TOOLS_LINT_ENGINE_H_
