#ifndef MBTA_TOOLS_LINT_ENGINE_H_
#define MBTA_TOOLS_LINT_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

namespace mbta::lint {

/// One rule violation, formatted by the driver as
/// `file:line: rule-id: message`.
struct Violation {
  std::string file;
  int line = 0;
  std::string rule;     // "R1" .. "R9"
  std::string message;  // human-readable, names the waiver tag
};

/// Rule catalog (see CONTRIBUTING.md, "Static analysis"):
///
///   R1  no std::unordered_map / std::unordered_set in library code (and no
///       range-for / .begin() iteration over one) — iteration order is
///       nondeterministic and silently changes tie-breaking-sensitive
///       greedy results. Waiver: unordered-ok.
///   R2  no nondeterminism sources in solver code: rand/srand/drand48,
///       std::random_device, time()/clock()/gettimeofday/localtime/gmtime,
///       std::chrono::system_clock. All randomness flows through seeded
///       mbta::Rng (src/util/rng.h); src/util and src/obs are exempt
///       (that is where the RNG and the timers live). Waiver: nondet-ok.
///   R3  no ==/!= against floating-point literals outside src/util's
///       tolerance helpers. Waiver: float-eq-ok.
///   R4  no std::cout / printf / puts / fprintf(stdout, ...) in library
///       code (src/); CLI, bench, tools and tests are exempt.
///       Waiver: stdout-ok.
///   R5  counter/gauge keys and phase paths passed as string literals to
///       CounterRegistry / PhaseTimings APIs must match the slash-path
///       grammar segment(/segment)* with segment = [a-z0-9_]+; ScopedPhase
///       labels are single segments (nesting builds the path). Fault-point
///       names passed to FaultInjector APIs / MaybeFail follow the same
///       slash-path grammar, as do trace span/instant names (ScopedSpan,
///       Tracer::BeginSpan/Instant/RegisterThread) and span-arg keys
///       (ScopedSpan::Arg) — traces are diffed by name, so names are
///       stable identifiers, not prose. Waiver: name-ok.
///   R6  every .h under src/ carries an include guard (or #pragma once)
///       and directly includes the std headers for the std types it names
///       (lightweight IWYU over a curated type list). Waiver: include-ok.
///   R7  no raw monotonic-clock reads or sleeps in library code outside
///       src/util and src/obs: std::chrono::steady_clock /
///       high_resolution_clock and sleep_for/sleep_until bypass the
///       injectable Clock seam (src/util/clock.h), making deadline code
///       untestable with FakeClock. Waiver: clock-ok.
///   R8  no raw threading primitives in library code outside src/util:
///       std::thread, std::jthread and std::async bypass the
///       deterministic ThreadPool seam (src/util/thread_pool.h), whose
///       fixed contiguous slicing is what makes the parallel solvers'
///       byte-identical-at-any-thread-count contract checkable.
///       Waiver: thread-ok.
///   R9  no heap allocation in solver inner loops: `new`, std::make_unique
///       / make_shared, and standard-container construction (vector,
///       string, map, set, deque, queue, priority_queue, unordered_*, ...)
///       inside for/while bodies in src/core and src/flow. Per-iteration
///       allocation is what the arena-scratch overhaul removed from the
///       hot paths (see CONTRIBUTING.md, "Memory & allocation"); scratch
///       belongs in the solve's Arena or hoisted outside the loop. Cold
///       paths waive with: alloc-ok.
///
/// A waiver is a comment `// mbta-lint: <tag>(<reason>)` on the violating
/// line or the line directly above it; the reason must be non-empty.

/// How a path is scoped for rule selection. Derived from the first
/// recognized component: src/<subsystem>/... is library code; tools/,
/// bench/, tests/, examples/ are exempt from the library-only rules.
struct FileScope {
  bool library = false;      // under src/
  bool header = false;       // ends in .h
  std::string subsystem;     // "core", "flow", ... ("" outside src/)
};

FileScope ClassifyPath(std::string_view path);

/// Lints one file's contents. `path` is used for scoping and reporting
/// only; no filesystem access happens here, so tests can feed snippets.
std::vector<Violation> LintFile(std::string_view path,
                                std::string_view content);

/// True iff `key` matches the observability slash-path grammar
/// `[a-z0-9_]+(/[a-z0-9_]+)*` (CONTRIBUTING.md, "Observability").
bool IsValidCounterKey(std::string_view key);

/// True iff `label` is a single lower_snake_case path segment.
bool IsValidPhaseLabel(std::string_view label);

/// Recursively collects .h/.cc files under each of `paths` (a path may
/// also name a single file). Returns a deterministically sorted list;
/// unknown paths are reported in `errors`.
std::vector<std::string> CollectFiles(const std::vector<std::string>& paths,
                                      std::vector<std::string>* errors);

}  // namespace mbta::lint

#endif  // MBTA_TOOLS_LINT_ENGINE_H_
