#ifndef MBTA_TOOLS_LINT_INDEX_H_
#define MBTA_TOOLS_LINT_INDEX_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

/// The whole-program side of mbta_lint: a lightweight C++ indexer that
/// builds a repo-wide symbol table, include graph, and approximate call
/// graph straight from the token stream — no libclang, no compiler,
/// exactly the dependency-free stance of the per-file rules.
///
/// What the index guarantees, and what it only approximates, matters for
/// every pass built on top (tools/lint_passes.h):
///
///   * Lexing is exact: comments, string literals, raw strings and
///     preprocessor directives never leak tokens, so a banned identifier
///     in a doc comment cannot taint anything.
///   * Function *definitions* are recovered structurally (scope stack of
///     namespace / class braces; ctor-init lists and trailing return
///     types handled), keyed by `Class::name` — namespaces are not part
///     of the key, so two classes with the same name in different
///     namespaces alias. The repo has none; the approximation is
///     documented in CONTRIBUTING.md.
///   * The call graph is name-resolved, not type-resolved: a member call
///     `x.Solve()` links to *every* indexed `Solve` definition. That
///     over-approximation is deliberate — for taint and reachability we
///     want the union over possible virtual targets. Preprocessor
///     branches are all visible (#if bodies lex like plain code), so
///     both sides of MBTA_OBS_THREADSAFE are analyzed.
///   * operator overloads and lambdas are not indexed as functions
///     (calls inside a lambda attribute to the enclosing function).
namespace mbta::lint {

// ---------------------------------------------------------------------------
// Lexer (shared with the per-file rule engine in lint_engine.h).
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Waiver {
  std::string tag;
  std::string reason;  // text inside (...), empty when absent
  bool has_reason = false;
};

struct PpDirective {
  int line;
  std::string text;  // full directive, continuations joined, no comments
};

struct LexResult {
  std::vector<Token> tokens;
  std::map<int, std::vector<Waiver>> waivers;  // by line
  std::vector<PpDirective> directives;
};

LexResult Lex(std::string_view src);

/// True for number tokens with a fractional part, exponent, or hex-float
/// marker — the operands R3 polices.
bool IsFloatLiteralToken(const Token& t);

// ---------------------------------------------------------------------------
// Path scoping (shared with lint_engine.h).
// ---------------------------------------------------------------------------

/// How a path is scoped for rule selection. Derived from the first
/// recognized component: src/<subsystem>/... is library code; tools/,
/// bench/, tests/, examples/ are exempt from the library-only rules.
struct FileScope {
  bool library = false;      // under src/
  bool header = false;       // ends in .h
  std::string subsystem;     // "core", "flow", ... ("" outside src/)
};

FileScope ClassifyPath(std::string_view path);

// ---------------------------------------------------------------------------
// The repo index.
// ---------------------------------------------------------------------------

/// One file handed to the analyzer; no filesystem access happens inside
/// the index, so tests feed in-memory fixtures.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One call site inside a function body.
struct CallSite {
  std::string name;       // unqualified callee name
  std::string qualifier;  // last `X` of `X::name(...)`, else ""
  bool member = false;    // obj.name(...) / obj->name(...)
  bool ctor_style = false;  // `Type var;` / `Type var(...)` declaration
  int line = 0;
  std::size_t token = 0;  // index of the name token in the file's stream
};

/// One lock acquisition inside a function body (MutexLock, MBTA_OBS_LOCK,
/// std::unique_lock / lock_guard / scoped_lock, or a direct .Lock()).
struct LockAcquisition {
  std::string mutex;  // last identifier of the lock expression
  int line = 0;
  std::size_t token = 0;  // index into the file's token stream
};

struct FunctionInfo {
  std::string name;        // unqualified
  std::string class_name;  // "" for free functions
  std::string qualified;   // Class::name, or name for free functions
  int line = 0;            // definition line
  std::size_t file = 0;    // index into RepoIndex::files
  std::size_t body_begin = 0;  // token range of the body, half-open
  std::size_t body_end = 0;
  bool is_ctor_or_dtor = false;
  bool no_tsa = false;  // MBTA_OBS_NO_TSA / MBTA_NO_THREAD_SAFETY_ANALYSIS
  std::vector<std::string> requires_mutexes;  // MBTA_REQUIRES(...)
  std::vector<CallSite> calls;
  std::vector<LockAcquisition> locks;
};

/// A field declared `T field MBTA_GUARDED_BY(mu);` (or the OBS variant).
struct GuardedField {
  std::string class_name;
  std::string field;
  std::string mutex;
  int line = 0;
};

struct FileIndex {
  std::string path;
  FileScope scope;
  LexResult lex;
  std::vector<FunctionInfo> functions;  // definitions in this file
  std::vector<GuardedField> guarded_fields;
  // class -> names of mutex-typed fields (mbta::Mutex / std::mutex).
  std::map<std::string, std::set<std::string>> class_mutexes;
  // Contract info harvested from *declarations* (in-class prototypes):
  // qualified name -> REQUIRES mutexes / no_tsa marker.
  std::map<std::string, std::vector<std::string>> requires_decls;
  std::set<std::string> no_tsa_decls;
  // Include-graph edges: repo-relative #include "..." targets.
  std::vector<std::string> repo_includes;
};

struct RepoIndex {
  std::vector<FileIndex> files;
  // Unqualified function name -> (file index, function index) of every
  // definition. The resolution seam for the call graph.
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      functions_by_name;
  // class -> field -> guarding mutex, merged across files.
  std::map<std::string, std::map<std::string, std::string>> guards_by_class;
  // class -> mutex field names, merged across files.
  std::map<std::string, std::set<std::string>> mutexes_by_class;

  const FunctionInfo& Fn(std::pair<std::size_t, std::size_t> id) const {
    return files[id.first].functions[id.second];
  }
};

/// Builds the index over library files (src/**); non-library inputs are
/// skipped — tools, benches, and tests are not part of the program the
/// whole-program passes reason about.
RepoIndex BuildRepoIndex(const std::vector<SourceFile>& files);

}  // namespace mbta::lint

#endif  // MBTA_TOOLS_LINT_INDEX_H_
