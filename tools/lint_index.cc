#include "tools/lint_index.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace mbta::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Parses every `mbta-lint: tag(reason)` occurrence inside a comment.
void ParseWaivers(std::string_view comment, int line, LexResult* out) {
  static constexpr std::string_view kMarker = "mbta-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    pos += kMarker.size();
    while (pos < comment.size() && comment[pos] == ' ') ++pos;
    std::size_t tag_end = pos;
    while (tag_end < comment.size() &&
           (std::isalnum(static_cast<unsigned char>(comment[tag_end])) ||
            comment[tag_end] == '-')) {
      ++tag_end;
    }
    if (tag_end == pos) continue;
    Waiver w;
    w.tag = std::string(comment.substr(pos, tag_end - pos));
    if (tag_end < comment.size() && comment[tag_end] == '(') {
      const std::size_t close = comment.find(')', tag_end);
      if (close != std::string_view::npos && close > tag_end + 1) {
        w.has_reason = true;
        w.reason = std::string(
            comment.substr(tag_end + 1, close - tag_end - 1));
      }
    }
    out->waivers[line].push_back(std::move(w));
    pos = tag_end;
  }
}

}  // namespace

LexResult Lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto push = [&out](Token::Kind kind, std::string text, int at) {
    out.tokens.push_back(Token{kind, std::move(text), at});
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t end = src.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      ParseWaivers(src.substr(i + 2, stop - i - 2), line, &out);
      i = stop;
      continue;
    }
    // Block comment (may span lines; waivers attach to the line each
    // fragment sits on).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      std::size_t frag = j;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          ParseWaivers(src.substr(frag, j - frag), line, &out);
          ++line;
          frag = j + 1;
        }
        ++j;
      }
      ParseWaivers(src.substr(frag, std::min(j, n) - frag), line, &out);
      i = j + 1 < n ? j + 2 : n;
      continue;
    }
    // Preprocessor directive (only at start of line, but a simple
    // "previous non-blank was a newline" test is enough for this repo).
    if (c == '#') {
      bool at_line_start = true;
      for (std::size_t k = i; k-- > 0;) {
        if (src[k] == '\n') break;
        if (src[k] != ' ' && src[k] != '\t') {
          at_line_start = false;
          break;
        }
      }
      if (at_line_start) {
        const int start_line = line;
        std::string text;
        while (i < n) {
          const std::size_t end = src.find('\n', i);
          const std::size_t stop = end == std::string_view::npos ? n : end;
          std::string_view piece = src.substr(i, stop - i);
          // Strip a trailing line comment from the directive text.
          if (const std::size_t cpos = piece.find("//");
              cpos != std::string_view::npos) {
            ParseWaivers(piece.substr(cpos + 2), line, &out);
            piece = piece.substr(0, cpos);
          }
          const bool continued = !piece.empty() && piece.back() == '\\';
          if (continued) piece.remove_suffix(1);
          text.append(piece);
          i = stop;
          if (stop < n) {
            ++line;
            ++i;
          }
          if (!continued) break;
          text.push_back(' ');
        }
        out.directives.push_back(PpDirective{start_line, std::move(text)});
        continue;
      }
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string close = ")" + delim + "\"";
      const std::size_t end = src.find(close, j);
      const std::size_t stop =
          end == std::string_view::npos ? n : end + close.size();
      const int at = line;
      std::string body(src.substr(
          std::min(j + 1, n),
          end == std::string_view::npos ? 0 : end - j - 1));
      line += static_cast<int>(
          std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                     src.begin() + static_cast<std::ptrdiff_t>(stop), '\n'));
      push(Token::Kind::kString, std::move(body), at);
      i = stop;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string body;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          body += src[j];
          body += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') break;  // unterminated; bail at EOL
        body += src[j];
        ++j;
      }
      push(quote == '"' ? Token::Kind::kString : Token::Kind::kChar,
           std::move(body), line);
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && IsIdentChar(src[j])) ++j;
      push(Token::Kind::kIdent, std::string(src.substr(i, j - i)), line);
      i = j;
      continue;
    }
    // Number (including 1.5e-3, suffixes; '.' leading handled below).
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(src[i + 1]))) {
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (IsIdentChar(d) || d == '.') {
          if ((d == 'e' || d == 'E') && j + 1 < n &&
              (src[j + 1] == '+' || src[j + 1] == '-')) {
            j += 2;
            continue;
          }
          ++j;
          continue;
        }
        break;
      }
      push(Token::Kind::kNumber, std::string(src.substr(i, j - i)), line);
      i = j;
      continue;
    }
    // Multi-char operators the rules care about; everything else is a
    // single punctuation char (so >> closing templates stays two '>').
    if (i + 1 < n) {
      const std::string_view two = src.substr(i, 2);
      if (two == "==" || two == "!=" || two == "::" || two == "->") {
        push(Token::Kind::kPunct, std::string(two), line);
        i += 2;
        continue;
      }
    }
    push(Token::Kind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

bool IsFloatLiteralToken(const Token& t) {
  if (t.kind != Token::Kind::kNumber) return false;
  if (t.text.size() > 1 && (t.text[1] == 'x' || t.text[1] == 'X')) {
    return t.text.find('p') != std::string::npos ||
           t.text.find('P') != std::string::npos;
  }
  return t.text.find('.') != std::string::npos ||
         t.text.find('e') != std::string::npos ||
         t.text.find('E') != std::string::npos;
}

FileScope ClassifyPath(std::string_view path) {
  FileScope scope;
  scope.header = path.size() >= 2 && path.substr(path.size() - 2) == ".h";
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty()) parts.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(std::move(cur));
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i] == "src") {
      scope.library = true;
      if (i + 1 < parts.size() &&
          parts[i + 1].find('.') == std::string::npos) {
        scope.subsystem = parts[i + 1];
      }
      break;
    }
    if (parts[i] == "tools" || parts[i] == "bench" || parts[i] == "tests" ||
        parts[i] == "examples") {
      break;
    }
  }
  return scope;
}

// ---------------------------------------------------------------------------
// The indexer: one forward scan with a scope stack recovers namespaces,
// classes, and function definitions; a body sub-scan extracts calls and
// lock acquisitions.
// ---------------------------------------------------------------------------

namespace {

/// Keywords and builtin type names that can never be a repo-defined
/// callee; filters both `name(...)` calls and `Type var;` ctor-style
/// candidates.
const std::set<std::string>& NonCalleeNames() {
  static const std::set<std::string> kSet = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "decltype", "new",
      "delete",   "throw",    "case",     "do",       "else",
      "goto",     "operator", "static_assert",        "defined",
      "auto",     "const",    "constexpr", "consteval", "constinit",
      "static",   "inline",   "virtual",  "explicit", "extern",
      "mutable",  "typename", "template", "using",    "typedef",
      "void",     "bool",     "char",     "int",      "long",
      "short",    "float",    "double",   "unsigned", "signed",
      "wchar_t",  "char8_t",  "char16_t", "char32_t", "true",
      "false",    "nullptr",  "this",     "noexcept", "override",
      "final",    "public",   "private",  "protected", "friend",
      "class",    "struct",   "enum",     "union",    "namespace",
      "co_await", "co_return", "co_yield", "requires", "concept",
      "assert",
  };
  return kSet;
}

bool IsNoTsaMarker(const std::string& t) {
  return t == "MBTA_NO_THREAD_SAFETY_ANALYSIS" || t == "MBTA_OBS_NO_TSA";
}

class Indexer {
 public:
  Indexer(std::size_t file_id, FileIndex* out)
      : file_id_(file_id), out_(out), toks_(out->lex.tokens) {}

  void Run() {
    CollectIncludes();
    std::size_t i = 0;
    while (i < Size()) Step(&i);
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kOther };
    Kind kind;
    std::string name;
  };

  std::size_t Size() const { return toks_.size(); }
  const Token& Tok(std::size_t i) const { return toks_[i]; }
  bool IsPunct(std::size_t i, std::string_view p) const {
    return i < Size() && Tok(i).kind == Token::Kind::kPunct &&
           Tok(i).text == p;
  }
  bool IsIdent(std::size_t i) const {
    return i < Size() && Tok(i).kind == Token::Kind::kIdent;
  }
  bool IsIdent(std::size_t i, std::string_view name) const {
    return IsIdent(i) && Tok(i).text == name;
  }

  void CollectIncludes() {
    for (const PpDirective& d : out_->lex.directives) {
      const std::size_t inc = d.text.find("include");
      if (inc == std::string::npos) continue;
      const std::size_t open = d.text.find('"', inc);
      if (open == std::string::npos) continue;
      const std::size_t close = d.text.find('"', open + 1);
      if (close == std::string::npos) continue;
      out_->repo_includes.push_back(
          d.text.substr(open + 1, close - open - 1));
    }
  }

  /// Index one past a balanced (...) starting at `i` (pointing at '(').
  std::size_t SkipParens(std::size_t i) const {
    int depth = 0;
    for (; i < Size(); ++i) {
      if (IsPunct(i, "(")) ++depth;
      if (IsPunct(i, ")") && --depth == 0) return i + 1;
    }
    return i;
  }

  /// Index one past a balanced {...} starting at `i` (pointing at '{').
  std::size_t SkipBraces(std::size_t i) const {
    int depth = 0;
    for (; i < Size(); ++i) {
      if (IsPunct(i, "{")) ++depth;
      if (IsPunct(i, "}") && --depth == 0) return i + 1;
    }
    return i;
  }

  /// Index one past a balanced <...> starting at `i` (pointing at '<').
  /// Bails at ';' so stray comparisons cannot derail the scan.
  std::size_t SkipTemplateArgs(std::size_t i) const {
    int depth = 0;
    for (; i < Size(); ++i) {
      if (IsPunct(i, "<")) ++depth;
      if (IsPunct(i, ">") && --depth == 0) return i + 1;
      if (IsPunct(i, ";")) return i;
    }
    return i;
  }

  std::string CurrentClass() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  void Step(std::size_t* ip) {
    const std::size_t i = *ip;
    if (IsPunct(i, "}")) {
      if (!stack_.empty()) stack_.pop_back();
      *ip = i + 1;
      return;
    }
    if (IsPunct(i, "{")) {
      stack_.push_back({Scope::kOther, ""});
      *ip = i + 1;
      return;
    }
    if (!IsIdent(i)) {
      *ip = i + 1;
      return;
    }
    const std::string& text = Tok(i).text;

    if (text == "template" && IsPunct(i + 1, "<")) {
      // Skip the parameter list so `template <class T> class Foo` parses
      // the real class head, not the parameter name.
      *ip = SkipTemplateArgs(i + 1);
      return;
    }
    if (text == "namespace") {
      std::size_t j = i + 1;
      while (IsIdent(j) || IsPunct(j, "::")) ++j;
      if (IsPunct(j, "{")) {
        stack_.push_back({Scope::kNamespace, ""});
        *ip = j + 1;
        return;
      }
      *ip = j;  // alias or ill-formed; fall through token by token
      return;
    }
    if ((text == "class" || text == "struct") &&
        !(i > 0 && IsIdent(i - 1, "enum"))) {
      // Find the class name: the first identifier after the keyword that
      // is not an attribute-style macro `NAME(...)`. Then find the body
      // '{' (skipping base clauses) or a ';' forward declaration.
      std::size_t j = i + 1;
      std::string name;
      while (j < Size()) {
        if (IsIdent(j)) {
          if (IsPunct(j + 1, "(")) {  // MBTA_CAPABILITY("mutex") etc.
            j = SkipParens(j + 1);
            continue;
          }
          name = Tok(j).text;
          ++j;
          continue;
        }
        if (IsPunct(j, "<")) {  // template-id in a specialization
          j = SkipTemplateArgs(j);
          continue;
        }
        break;
      }
      // Scan to '{' (class body) or ';' (fwd decl / variable).
      while (j < Size() && !IsPunct(j, "{") && !IsPunct(j, ";")) {
        if (IsPunct(j, "(")) {
          j = SkipParens(j);
          continue;
        }
        ++j;
      }
      if (IsPunct(j, "{") && !name.empty()) {
        stack_.push_back({Scope::kClass, name});
        *ip = j + 1;
        return;
      }
      *ip = j + 1;
      return;
    }
    if (text == "enum") {
      // `enum [class] Name [: type] { ... };` — the body is not code.
      std::size_t j = i + 1;
      while (j < Size() && !IsPunct(j, "{") && !IsPunct(j, ";")) ++j;
      *ip = IsPunct(j, "{") ? SkipBraces(j) : j + 1;
      return;
    }

    // Guarded-field annotation at class scope:
    //   T field MBTA_GUARDED_BY(mu_);
    if (!stack_.empty() && stack_.back().kind == Scope::kClass &&
        (text == "MBTA_GUARDED_BY" || text == "MBTA_OBS_GUARDED_BY" ||
         text == "MBTA_PT_GUARDED_BY") &&
        IsPunct(i + 1, "(")) {
      GuardedField gf;
      gf.class_name = stack_.back().name;
      gf.line = Tok(i).line;
      if (i > 0 && IsIdent(i - 1)) gf.field = Tok(i - 1).text;
      const std::size_t close = SkipParens(i + 1);
      for (std::size_t j = i + 2; j + 1 < close; ++j) {
        if (IsIdent(j)) gf.mutex = Tok(j).text;
      }
      if (!gf.field.empty() && !gf.mutex.empty()) {
        out_->guarded_fields.push_back(std::move(gf));
      }
      *ip = close;
      return;
    }

    // Mutex-typed field at class scope: `Mutex mu_;` / `std::mutex mu_;`
    // (possibly `mutable`). Records the class's lockable names so the
    // lock-order pass can qualify acquisitions.
    if (!stack_.empty() && stack_.back().kind == Scope::kClass &&
        (text == "Mutex" || text == "mutex") && IsIdent(i + 1) &&
        IsPunct(i + 2, ";")) {
      out_->class_mutexes[stack_.back().name].insert(Tok(i + 1).text);
      *ip = i + 3;
      return;
    }

    // Function definition / declaration: `[Class ::] name ( ... )` at
    // namespace or class scope.
    const bool at_decl_scope =
        stack_.empty() || stack_.back().kind == Scope::kNamespace ||
        stack_.back().kind == Scope::kClass;
    if (at_decl_scope && IsPunct(i + 1, "(") &&
        NonCalleeNames().count(text) == 0) {
      if (TryFunction(ip)) return;
    }
    *ip = i + 1;
  }

  /// Attempts to parse a function definition or declaration whose name
  /// token is at *ip (already known to be followed by '('). Returns true
  /// and advances *ip past it on success.
  bool TryFunction(std::size_t* ip) {
    const std::size_t name_at = *ip;
    // Qualifier chain directly before the name: `A::B::name` — keep the
    // last component as the class.
    std::string class_name;
    bool is_dtor = false;
    {
      std::size_t q = name_at;
      while (q >= 2 && IsPunct(q - 1, "::") && IsIdent(q - 2)) {
        class_name = Tok(q - 2).text;
        q -= 2;
        break;  // last component only
      }
      if (name_at >= 1 && IsPunct(name_at - 1, "~")) is_dtor = true;
    }
    if (class_name.empty()) class_name = CurrentClass();

    const std::size_t after_params = SkipParens(name_at + 1);
    // Scan the tail between ')' and '{' / ';', collecting contracts.
    std::vector<std::string> requires_mutexes;
    bool no_tsa = false;
    std::size_t j = after_params;
    while (j < Size()) {
      if (IsPunct(j, ";")) {
        // Declaration: record contract info for cross-TU merging.
        const std::string qualified = class_name.empty()
                                          ? Tok(name_at).text
                                          : class_name + "::" +
                                                Tok(name_at).text;
        if (!requires_mutexes.empty()) {
          out_->requires_decls[qualified] = requires_mutexes;
        }
        if (no_tsa) out_->no_tsa_decls.insert(qualified);
        *ip = j + 1;
        return true;
      }
      if (IsPunct(j, "{")) break;  // definition body
      if (IsPunct(j, "}")) return false;  // ran off the scope; not a fn
      if (IsIdent(j, "MBTA_REQUIRES") && IsPunct(j + 1, "(")) {
        const std::size_t close = SkipParens(j + 1);
        for (std::size_t k = j + 2; k + 1 < close; ++k) {
          if (IsIdent(k)) requires_mutexes.push_back(Tok(k).text);
        }
        j = close;
        continue;
      }
      if (IsIdent(j) && IsNoTsaMarker(Tok(j).text)) {
        no_tsa = true;
        ++j;
        continue;
      }
      if (IsPunct(j, "=")) {
        // `= 0`, `= default`, `= delete`: a declaration; scan to ';'.
        while (j < Size() && !IsPunct(j, ";")) ++j;
        continue;
      }
      if (IsPunct(j, ":")) {
        // Ctor-init list: `: member(expr), member{expr} {`. Step over
        // each initializer group; the next '{' not directly after a
        // member name is the body.
        ++j;
        while (j < Size()) {
          if (IsIdent(j)) {
            ++j;
            if (IsPunct(j, "<")) j = SkipTemplateArgs(j);
            if (IsPunct(j, "(")) {
              j = SkipParens(j);
            } else if (IsPunct(j, "{")) {
              j = SkipBraces(j);
            }
            if (IsPunct(j, ",")) {
              ++j;
              continue;
            }
          }
          break;
        }
        continue;
      }
      if (IsPunct(j, "(")) {
        j = SkipParens(j);  // noexcept(...), attributes
        continue;
      }
      ++j;
    }
    if (!IsPunct(j, "{")) return false;

    FunctionInfo fn;
    fn.name = Tok(name_at).text;
    fn.class_name = class_name;
    fn.qualified =
        class_name.empty() ? fn.name : class_name + "::" + fn.name;
    fn.line = Tok(name_at).line;
    fn.file = file_id_;
    fn.body_begin = j + 1;
    fn.body_end = SkipBraces(j) - 1;  // index of the closing '}'
    fn.is_ctor_or_dtor = is_dtor || fn.name == class_name;
    fn.no_tsa = no_tsa;
    fn.requires_mutexes = std::move(requires_mutexes);
    ExtractBody(&fn);
    *ip = fn.body_end + 1;
    out_->functions.push_back(std::move(fn));
    return true;
  }

  /// Collects call sites and lock acquisitions from a body token range.
  void ExtractBody(FunctionInfo* fn) {
    const auto& skip = NonCalleeNames();
    for (std::size_t i = fn->body_begin; i < fn->body_end; ++i) {
      if (!IsIdent(i)) continue;
      const std::string& t = Tok(i).text;

      // Lock acquisitions.
      if (t == "MutexLock" && IsIdent(i + 1) && IsPunct(i + 2, "(")) {
        RecordLockArgs(fn, i + 2, SkipParens(i + 2));
        continue;
      }
      if (t == "MBTA_OBS_LOCK" && IsPunct(i + 1, "(")) {
        RecordLockArgs(fn, i + 1, SkipParens(i + 1));
        continue;
      }
      if ((t == "unique_lock" || t == "lock_guard" ||
           t == "scoped_lock")) {
        std::size_t j = i + 1;
        if (IsPunct(j, "<")) j = SkipTemplateArgs(j);
        if (IsIdent(j) && IsPunct(j + 1, "(")) {
          RecordLockArgs(fn, j + 1, SkipParens(j + 1));
        }
        continue;
      }
      if ((t == "Lock" || t == "lock") && IsPunct(i + 1, "(") &&
          IsPunct(i + 2, ")") && i >= 2 &&
          (IsPunct(i - 1, ".") || IsPunct(i - 1, "->")) && IsIdent(i - 2)) {
        fn->locks.push_back(
            LockAcquisition{Tok(i - 2).text, Tok(i).line, i});
        continue;
      }

      if (skip.count(t) != 0) continue;

      // Plain or qualified or member call: name(...).
      if (IsPunct(i + 1, "(")) {
        CallSite cs;
        cs.name = t;
        cs.line = Tok(i).line;
        cs.token = i;
        if (i >= 1 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->"))) {
          cs.member = true;
        } else if (i >= 2 && IsPunct(i - 1, "::") && IsIdent(i - 2)) {
          cs.qualifier = Tok(i - 2).text;
        }
        fn->calls.push_back(std::move(cs));
        continue;
      }
      // Ctor-style declaration: `Type var;` / `Type var(...)` /
      // `Type var{...}` / `Type var = ...`. Only the declared-type
      // position counts: the previous token must not be an operand
      // context (member access, '::' qualification handled above).
      if (IsIdent(i + 1) &&
          (IsPunct(i + 2, ";") || IsPunct(i + 2, "(") ||
           IsPunct(i + 2, "{") || IsPunct(i + 2, "=")) &&
          skip.count(Tok(i + 1).text) == 0 &&
          !(i >= 1 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->")))) {
        CallSite cs;
        cs.name = t;
        cs.ctor_style = true;
        cs.line = Tok(i).line;
        cs.token = i;
        if (i >= 2 && IsPunct(i - 1, "::") && IsIdent(i - 2)) {
          cs.qualifier = Tok(i - 2).text;
        }
        fn->calls.push_back(std::move(cs));
        continue;
      }
    }
  }

  /// Records one acquisition per comma-separated argument group inside a
  /// lock call's parens (`open` points at '(', `close` one past ')').
  /// The group's last identifier names the mutex: `&mu_`, `other.mu_`
  /// and plain `mu_` all resolve to `mu_`.
  void RecordLockArgs(FunctionInfo* fn, std::size_t open,
                      std::size_t close) {
    std::string last;
    std::size_t at = open;
    for (std::size_t j = open + 1; j + 1 < close; ++j) {
      if (IsPunct(j, ",")) {
        if (!last.empty()) {
          fn->locks.push_back(
              LockAcquisition{last, Tok(at).line, at});
          last.clear();
        }
        continue;
      }
      if (IsIdent(j)) {
        last = Tok(j).text;
        at = j;
      }
    }
    if (!last.empty()) {
      fn->locks.push_back(LockAcquisition{last, Tok(at).line, at});
    }
  }

  std::size_t file_id_;
  FileIndex* out_;
  const std::vector<Token>& toks_;
  std::vector<Scope> stack_;
};

}  // namespace

RepoIndex BuildRepoIndex(const std::vector<SourceFile>& files) {
  RepoIndex index;
  for (const SourceFile& f : files) {
    FileScope scope = ClassifyPath(f.path);
    if (!scope.library) continue;
    FileIndex fi;
    fi.path = f.path;
    fi.scope = std::move(scope);
    fi.lex = Lex(f.content);
    Indexer(index.files.size(), &fi).Run();
    index.files.push_back(std::move(fi));
  }
  // Deterministic order regardless of input order.
  std::sort(index.files.begin(), index.files.end(),
            [](const FileIndex& a, const FileIndex& b) {
              return a.path < b.path;
            });
  for (std::size_t fid = 0; fid < index.files.size(); ++fid) {
    FileIndex& fi = index.files[fid];
    for (std::size_t k = 0; k < fi.functions.size(); ++k) {
      FunctionInfo& fn = fi.functions[k];
      fn.file = fid;
      index.functions_by_name[fn.name].emplace_back(fid, k);
      // Merge contract info from in-class declarations (the prototype
      // may carry MBTA_REQUIRES / no-TSA markers the out-of-line
      // definition does not repeat).
      for (const FileIndex& other : index.files) {
        const auto rit = other.requires_decls.find(fn.qualified);
        if (rit != other.requires_decls.end() &&
            fn.requires_mutexes.empty()) {
          fn.requires_mutexes = rit->second;
        }
        if (other.no_tsa_decls.count(fn.qualified) != 0) fn.no_tsa = true;
      }
    }
    for (const GuardedField& gf : fi.guarded_fields) {
      index.guards_by_class[gf.class_name][gf.field] = gf.mutex;
    }
    for (const auto& [cls, mutexes] : fi.class_mutexes) {
      index.mutexes_by_class[cls].insert(mutexes.begin(), mutexes.end());
    }
  }
  return index;
}

}  // namespace mbta::lint
