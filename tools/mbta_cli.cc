/// Command-line front end for the library: generate markets, solve
/// assignment problems, and evaluate/compare solutions without writing
/// any C++.
///
///   mbta_cli generate --dataset mturk --workers 500 --seed 7 --out m.market
///   mbta_cli stats    --market m.market
///   mbta_cli solve    --market m.market --solver greedy --alpha 0.5
///                     --out a.assignment
///   mbta_cli evaluate --market m.market --assignment a.assignment
///   mbta_cli compare  --market m.market --alpha 0.5
///
/// Solvers: greedy, parallel-greedy, threshold, local-search, stable-da,
/// matching, worker-centric, requester-centric, random, online-greedy,
/// online-two-phase, exact-flow (modular objective only). The
/// parallel-greedy family honors --threads (results are byte-identical
/// at any thread count; threads buy wall time only).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/baseline_solvers.h"
#include "core/exact_flow_solver.h"
#include "core/fallback_solver.h"
#include "core/greedy_solver.h"
#include "core/local_search_solver.h"
#include "core/online_solvers.h"
#include "core/parallel_greedy_solver.h"
#include "core/solver.h"
#include "core/stable_matching_solver.h"
#include "core/threshold_solver.h"
#include "gen/market_generator.h"
#include "io/market_io.h"
#include "market/metrics.h"
#include "obs/trace.h"
#include "service/market_service.h"
#include "util/deadline.h"
#include "util/stats.h"
#include "util/table.h"

namespace mbta::cli {
namespace {

/// Exit-code taxonomy (see CONTRIBUTING.md "Robustness"). Scripts depend
/// on these values; change them only with a changelog entry.
///  0  success
///  1  usage error: bad flags, unknown command/solver/dataset
///  2  bad input: a market/assignment file failed to parse or validate
///  3  degraded solve: a result was produced and written, but the
///     deadline/work budget expired first (best-effort answer)
///  4  internal error: unexpected exception or output write failure
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitBadInput = 2;
constexpr int kExitDegraded = 3;
constexpr int kExitInternal = 4;

struct Args {
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  std::uint64_t GetUint(const std::string& key,
                        std::uint64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : static_cast<std::uint64_t>(
                     std::strtoull(it->second.c_str(), nullptr, 10));
  }
  bool GetBool(const std::string& key) const {
    return flags.find(key) != flags.end();
  }
  bool Require(const std::string& key, std::string* out) const {
    const auto it = flags.find(key);
    if (it == flags.end()) {
      std::fprintf(stderr, "error: missing required flag --%s\n",
                   key.c_str());
      return false;
    }
    *out = it->second;
    return true;
  }
};

/// Dumps a solve's instrumentation: counters, gauges, and the phase
/// timing tree (paths are slash-nested, so indentation follows depth).
void PrintSolveStats(const SolveInfo& info) {
  if (!info.counters.empty()) {
    Table counters({"counter", "value"});
    for (const auto& [key, value] : info.counters.counters()) {
      counters.AddRow(
          {key, Table::Num(static_cast<std::int64_t>(value))});
    }
    for (const auto& [key, value] : info.counters.gauges()) {
      counters.AddRow({key, Table::Num(value)});
    }
    std::printf("%s", counters.ToString().c_str());
  }
  if (!info.phases.entries().empty()) {
    Table phases({"phase", "ms", "calls"});
    for (const auto& [path, entry] : info.phases.entries()) {
      phases.AddRow({path, Table::Num(entry.total_ms),
                     Table::Num(static_cast<std::int64_t>(entry.calls))});
    }
    std::printf("%s", phases.ToString().c_str());
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: mbta_cli <generate|stats|solve|evaluate|compare|serve|replay>"
      " [--flag value ...]\n"
      "  generate --dataset uniform|zipf|mturk|upwork --workers N\n"
      "           [--tasks N] [--seed S] --out FILE\n"
      "  stats    --market FILE\n"
      "  solve    --market FILE [--solver greedy] [--alpha 0.5]\n"
      "           [--objective submodular|modular] [--seed S] [--stats]\n"
      "           [--work-budget N] [--deadline-ms MS] [--fallback]\n"
      "           [--threads N] [--trace FILE] --out FILE\n"
      "  evaluate --market FILE --assignment FILE [--alpha 0.5]\n"
      "           [--objective submodular|modular]\n"
      "  compare  --market FILE [--alpha 0.5] [--stats]\n"
      "  serve    --script FILE [--wal FILE] [--epoch-batch N] [--queue N]\n"
      "           [--snapshot-every N] [--resolve-ratio R] [--work-budget N]\n"
      "           [--degrade-after-ms MS] [--alpha 0.5] [--out FILE]\n"
      "           [--trace FILE] [--stats]\n"
      "  replay   --wal FILE [--dump-state] [--stats]\n"
      "--stats prints the solver's work counters and phase timings\n"
      "--work-budget/--deadline-ms bound the solve; --fallback runs the\n"
      "standard degradation chain (exact flow -> greedy -> worker-centric)\n"
      "--threads N runs the parallel solvers on N threads (same answer,\n"
      "less wall time)\n"
      "--trace FILE records the solve as a Chrome trace-event JSON file\n"
      "(open in Perfetto or chrome://tracing, analyze with mbta_trace)\n"
      "serve drives a resident MarketService from a delta script (one\n"
      "delta per line, literal `epoch` lines run an epoch); with --wal\n"
      "the service is durable and `replay` recovers it from disk\n"
      "exit codes: 0 ok, 1 usage, 2 bad input, 3 degraded solve, "
      "4 internal\n");
  return kExitUsage;
}

std::unique_ptr<Solver> MakeSolver(const std::string& name,
                                   std::uint64_t seed) {
  if (name == "greedy") return std::make_unique<GreedySolver>();
  if (name == "greedy-plain") {
    return std::make_unique<GreedySolver>(GreedySolver::Mode::kPlain);
  }
  if (name == "parallel-greedy") {
    return std::make_unique<ParallelGreedySolver>();
  }
  if (name == "parallel-greedy-plain") {
    return std::make_unique<ParallelGreedySolver>(
        ParallelGreedySolver::Mode::kPlain);
  }
  if (name == "threshold") return std::make_unique<ThresholdSolver>();
  if (name == "local-search") return std::make_unique<LocalSearchSolver>();
  if (name == "stable-da") return std::make_unique<StableMatchingSolver>();
  if (name == "matching") return std::make_unique<MatchingSolver>();
  if (name == "worker-centric") {
    return std::make_unique<WorkerCentricSolver>();
  }
  if (name == "requester-centric") {
    return std::make_unique<RequesterCentricSolver>();
  }
  if (name == "random") return std::make_unique<RandomSolver>(seed);
  if (name == "online-greedy") {
    return std::make_unique<OnlineGreedySolver>(seed);
  }
  if (name == "online-two-phase") {
    return std::make_unique<TwoPhaseOnlineSolver>(seed);
  }
  if (name == "exact-flow") return std::make_unique<ExactFlowSolver>();
  return nullptr;
}

ObjectiveParams MakeObjectiveParams(const Args& args) {
  ObjectiveParams params;
  params.alpha = args.GetDouble("alpha", 0.5);
  params.kind = args.Get("objective", "submodular") == "modular"
                    ? ObjectiveKind::kModular
                    : ObjectiveKind::kSubmodular;
  return params;
}

int Generate(const Args& args) {
  std::string out;
  if (!args.Require("out", &out)) return kExitUsage;
  const std::string dataset = args.Get("dataset", "uniform");
  const std::size_t workers =
      static_cast<std::size_t>(args.GetUint("workers", 1000));
  const std::size_t tasks =
      static_cast<std::size_t>(args.GetUint("tasks", workers));
  const std::uint64_t seed = args.GetUint("seed", 42);

  GeneratorConfig config;
  if (dataset == "uniform") {
    config = UniformConfig(workers, tasks, seed);
  } else if (dataset == "zipf") {
    config = ZipfConfig(workers, tasks, seed);
  } else if (dataset == "mturk") {
    config = MTurkLikeConfig(workers, seed);
  } else if (dataset == "upwork") {
    config = UpworkLikeConfig(workers, seed);
  } else {
    std::fprintf(stderr, "error: unknown dataset '%s'\n", dataset.c_str());
    return kExitUsage;
  }
  const LaborMarket market = GenerateMarket(config);
  std::string error;
  if (!WriteMarketToFile(market, out, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitInternal;
  }
  std::printf("wrote %s: %zu workers, %zu tasks, %zu edges\n", out.c_str(),
              market.NumWorkers(), market.NumTasks(), market.NumEdges());
  return kExitOk;
}

int Stats(const Args& args) {
  std::string path;
  if (!args.Require("market", &path)) return kExitUsage;
  std::string error;
  const auto market = ReadMarketFromFile(path, &error);
  if (!market) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitBadInput;
  }
  const MarketStats s = ComputeStats(*market);
  std::printf("name            %s\n", market->name().c_str());
  std::printf("workers         %zu (total capacity %lld)\n", s.num_workers,
              static_cast<long long>(s.total_worker_capacity));
  std::printf("tasks           %zu (total capacity %lld)\n", s.num_tasks,
              static_cast<long long>(s.total_task_capacity));
  std::printf("edges           %zu\n", s.num_edges);
  std::printf("avg worker deg  %.2f (max %.0f)\n", s.avg_worker_degree,
              s.max_worker_degree);
  std::printf("avg task deg    %.2f (max %.0f, gini %.3f)\n",
              s.avg_task_degree, s.max_task_degree, s.task_degree_gini);
  std::printf("avg payment     %.4f\n", s.avg_payment);
  std::printf("avg quality     %.4f\n", s.avg_quality);
  return kExitOk;
}

int Solve(const Args& args) {
  std::string market_path, out;
  if (!args.Require("market", &market_path) || !args.Require("out", &out)) {
    return kExitUsage;
  }
  std::string error;
  const auto market = ReadMarketFromFile(market_path, &error);
  if (!market) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitBadInput;
  }

  SolveOptions solve_options;
  solve_options.budget.max_work =
      args.GetUint("work-budget", DeadlineBudget::kUnlimitedWork);
  solve_options.budget.max_wall_ms = args.GetDouble("deadline-ms", 0.0);
  solve_options.threads =
      static_cast<int>(args.GetUint("threads", 1));

  std::unique_ptr<Solver> solver;
  if (args.GetBool("fallback")) {
    // The degradation chain gives each optimizing stage the caller's
    // budget and lets the unbudgeted floor guarantee a complete answer.
    solver = MakeStandardFallbackChain(solve_options.budget);
  } else {
    const std::string solver_name = args.Get("solver", "greedy");
    solver = MakeSolver(solver_name, args.GetUint("seed", 1));
    if (!solver) {
      std::fprintf(stderr, "error: unknown solver '%s'\n",
                   solver_name.c_str());
      return kExitUsage;
    }
  }
  const MbtaProblem problem{&*market, MakeObjectiveParams(args)};
  SolveInfo info;
  const std::string trace_path = args.Get("trace", "");
  std::unique_ptr<Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<Tracer>();
    info.phases.set_tracer(tracer.get());
  }
  Assignment a;
  {
    // Root span over the whole solve; headline counters land as args at
    // close so the trace is self-describing without the JSON record.
    ScopedSpan cli_span(tracer.get(), "cli/solve", "cli");
    a = solver->Solve(problem, solve_options, &info);
    cli_span.Arg("gain_evaluations",
                 static_cast<std::int64_t>(info.gain_evaluations));
    cli_span.Arg("pairs", static_cast<std::int64_t>(a.edges.size()));
    cli_span.Arg("deadline_hit",
                 static_cast<std::int64_t>(info.deadline_hit ? 1 : 0));
  }
  if (tracer != nullptr) {
    std::string trace_error;
    if (!tracer->WriteFile(trace_path, &trace_error)) {
      std::fprintf(stderr, "error: %s\n", trace_error.c_str());
      return kExitInternal;
    }
    std::printf("wrote trace %s\n", trace_path.c_str());
  }
  if (!WriteAssignmentToFile(*market, a, out, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitInternal;
  }
  const AssignmentMetrics metrics = Evaluate(problem.MakeObjective(), a);
  std::printf("solver %s: MB=%.4f RB=%.4f WB=%.4f pairs=%zu (%.1f ms)\n",
              solver->name().c_str(), metrics.mutual_benefit,
              metrics.requester_benefit, metrics.worker_benefit,
              metrics.num_assignments, info.wall_ms);
  if (args.GetBool("stats")) {
    std::printf("gain evaluations: %zu\n", info.gain_evaluations);
    PrintSolveStats(info);
  }
  std::printf("wrote %s\n", out.c_str());
  if (info.deadline_hit) {
    std::fprintf(stderr, "warning: budget expired (%s); wrote best-effort "
                         "assignment\n",
                 ToString(info.stop_reason));
    return kExitDegraded;
  }
  return kExitOk;
}

int EvaluateCmd(const Args& args) {
  std::string market_path, assignment_path;
  if (!args.Require("market", &market_path) ||
      !args.Require("assignment", &assignment_path)) {
    return kExitUsage;
  }
  std::string error;
  const auto market = ReadMarketFromFile(market_path, &error);
  if (!market) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitBadInput;
  }
  const auto assignment =
      ReadAssignmentFromFile(*market, assignment_path, &error);
  if (!assignment) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitBadInput;
  }
  const MutualBenefitObjective objective(&*market,
                                         MakeObjectiveParams(args));
  const AssignmentMetrics metrics = Evaluate(objective, *assignment);
  std::printf("mutual benefit     %.4f (alpha=%.2f, %s)\n",
              metrics.mutual_benefit, objective.alpha(),
              ToString(objective.kind()));
  std::printf("requester benefit  %.4f\n", metrics.requester_benefit);
  std::printf("worker benefit     %.4f\n", metrics.worker_benefit);
  std::printf("assignments        %zu\n", metrics.num_assignments);
  std::printf("tasks covered      %zu / %zu\n", metrics.tasks_covered,
              market->NumTasks());
  std::printf("active workers     %zu / %zu\n", metrics.workers_active,
              market->NumWorkers());
  std::printf("worker-benefit jain %.4f, gini %.4f\n",
              JainFairnessIndex(metrics.per_worker_benefit),
              GiniCoefficient(metrics.per_worker_benefit));
  return kExitOk;
}

int Compare(const Args& args) {
  std::string market_path;
  if (!args.Require("market", &market_path)) return kExitUsage;
  std::string error;
  const auto market = ReadMarketFromFile(market_path, &error);
  if (!market) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitBadInput;
  }
  const MbtaProblem problem{&*market, MakeObjectiveParams(args)};
  const bool show_stats = args.GetBool("stats");
  Table table({"solver", "MB", "RB", "WB", "pairs", "time(ms)"});
  std::vector<std::pair<std::string, SolveInfo>> all_stats;
  for (const auto& solver :
       MakeStandardSolvers(args.GetUint("seed", 1),
                           problem.objective.kind ==
                               ObjectiveKind::kModular)) {
    SolveInfo info;
    const Assignment a = solver->Solve(problem, &info);
    const AssignmentMetrics m = Evaluate(problem.MakeObjective(), a);
    table.AddRow({solver->name(), Table::Num(m.mutual_benefit),
                  Table::Num(m.requester_benefit),
                  Table::Num(m.worker_benefit),
                  Table::Num(static_cast<std::int64_t>(m.num_assignments)),
                  Table::Num(info.wall_ms)});
    if (show_stats) all_stats.emplace_back(solver->name(), std::move(info));
  }
  std::printf("%s", table.ToString().c_str());
  for (const auto& [name, info] : all_stats) {
    std::printf("\n--- %s (gain evaluations: %zu) ---\n", name.c_str(),
                info.gain_evaluations);
    PrintSolveStats(info);
  }
  return kExitOk;
}

ServiceConfig MakeServiceConfig(const Args& args) {
  ServiceConfig config;
  config.wal_path = args.Get("wal", "");
  config.objective = MakeObjectiveParams(args);
  config.epoch_batch =
      static_cast<std::size_t>(args.GetUint("epoch-batch", 64));
  config.queue_capacity =
      static_cast<std::size_t>(args.GetUint("queue", 1024));
  config.snapshot_every = args.GetUint("snapshot-every", 16);
  config.resolve_ratio = args.GetDouble("resolve-ratio", 0.9);
  config.epoch_max_work =
      args.GetUint("work-budget", DeadlineBudget::kUnlimitedWork);
  config.degrade_after_ms = args.GetDouble("degrade-after-ms", 0.0);
  return config;
}

void PrintServiceSummary(const MarketService& service) {
  const ServiceState& state = service.state();
  std::printf("epochs %llu: %zu workers, %zu tasks, %zu pairs, %zu pending, "
              "objective %.6f\n",
              static_cast<unsigned long long>(state.epoch),
              state.workers.size(), state.tasks.size(), state.pairs.size(),
              state.pending.size(), service.objective_value());
}

int Serve(const Args& args) {
  std::string script_path;
  if (!args.Require("script", &script_path)) return kExitUsage;
  std::ifstream script_in(script_path);
  if (!script_in) {
    std::fprintf(stderr, "error: cannot open script %s\n",
                 script_path.c_str());
    return kExitBadInput;
  }
  std::string error;
  const auto script = ParseDeltaScript(script_in, &error);
  if (!script) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return kExitBadInput;
  }

  MarketService service(MakeServiceConfig(args));
  const std::string trace_path = args.Get("trace", "");
  std::unique_ptr<Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<Tracer>();
    service.stats().phases.set_tracer(tracer.get());
  }
  if (!service.Start(&error)) {
    std::fprintf(stderr, "error: recovery failed: %s\n", error.c_str());
    return kExitBadInput;
  }
  std::size_t admitted = 0, shed = 0, rejected = 0;
  for (const ScriptEntry& entry : *script) {
    if (entry.epoch) {
      if (!service.RunEpoch(&error)) {
        std::fprintf(stderr, "error: epoch failed: %s\n", error.c_str());
        return kExitInternal;
      }
      continue;
    }
    std::string why;
    switch (service.Submit(entry.delta, &why)) {
      case SubmitResult::kAdmitted:
        ++admitted;
        break;
      case SubmitResult::kShed:
        ++shed;
        break;
      case SubmitResult::kRejected:
        ++rejected;
        std::fprintf(stderr, "warning: rejected delta: %s\n", why.c_str());
        break;
    }
  }
  // Drain anything the script left queued so the final state reflects
  // every admitted delta.
  while (!service.state().pending.empty()) {
    if (!service.RunEpoch(&error)) {
      std::fprintf(stderr, "error: epoch failed: %s\n", error.c_str());
      return kExitInternal;
    }
  }
  std::printf("deltas: %zu admitted, %zu shed, %zu rejected\n", admitted,
              shed, rejected);
  PrintServiceSummary(service);

  const std::string out = args.Get("out", "");
  if (!out.empty()) {
    // Dump the final market through the standard market_io format so the
    // offline tools (stats/solve/compare) can pick up where serving
    // stopped.
    const LaborMarket market =
        BuildMarket(service.state(), MakeServiceConfig(args).edge_model);
    if (!WriteMarketToFile(market, out, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return kExitInternal;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  if (tracer != nullptr) {
    std::string trace_error;
    if (!tracer->WriteFile(trace_path, &trace_error)) {
      std::fprintf(stderr, "error: %s\n", trace_error.c_str());
      return kExitInternal;
    }
    std::printf("wrote trace %s\n", trace_path.c_str());
  }
  if (args.GetBool("stats")) PrintSolveStats(service.stats());
  const bool degraded = service.stats().counters.Value(
                            "service/epoch/degraded") > 0 ||
                        service.stats().counters.Value(
                            "service/epoch/budget_hit") > 0;
  if (degraded) {
    std::fprintf(stderr,
                 "warning: some epochs ran degraded or hit the work "
                 "budget; assignment is best-effort\n");
    return kExitDegraded;
  }
  return kExitOk;
}

int Replay(const Args& args) {
  std::string wal_path;
  if (!args.Require("wal", &wal_path)) return kExitUsage;
  MarketService service(MakeServiceConfig(args));
  std::string error;
  if (!service.Start(&error)) {
    std::fprintf(stderr, "error: recovery failed: %s\n", error.c_str());
    return kExitBadInput;
  }
  std::printf("recovered: replayed %llu deltas, %llu epochs "
              "(%llu WAL records total)\n",
              static_cast<unsigned long long>(service.stats().counters.Value(
                  "service/recovery/replayed_deltas")),
              static_cast<unsigned long long>(service.stats().counters.Value(
                  "service/recovery/replayed_epochs")),
              static_cast<unsigned long long>(service.state().wal_records));
  PrintServiceSummary(service);
  if (args.GetBool("dump-state")) {
    std::printf("%s", SerializeServiceState(service.state()).c_str());
  }
  if (args.GetBool("stats")) PrintSolveStats(service.stats());
  return kExitOk;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Args args;
  for (int i = 2; i < argc;) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    // A flag followed by another flag (or by nothing) is boolean, e.g.
    // `--stats`; otherwise the next token is its value.
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.flags[argv[i] + 2] = argv[i + 1];
      i += 2;
    } else {
      args.flags[argv[i] + 2] = "1";
      i += 1;
    }
  }
  if (command == "generate") return Generate(args);
  if (command == "stats") return Stats(args);
  if (command == "solve") return Solve(args);
  if (command == "evaluate") return EvaluateCmd(args);
  if (command == "compare") return Compare(args);
  if (command == "serve") return Serve(args);
  if (command == "replay") return Replay(args);
  return Usage();
}

}  // namespace
}  // namespace mbta::cli

int main(int argc, char** argv) {
  try {
    return mbta::cli::Main(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return mbta::cli::kExitInternal;
  } catch (...) {
    std::fprintf(stderr, "internal error: unknown exception\n");
    return mbta::cli::kExitInternal;
  }
}
