/// Analyzer for the Chrome trace-event files written by mbta::Tracer
/// (`mbta_cli solve --trace`, `smoke_suite --trace`). Three modes:
///
///   mbta_trace <trace.json> [--top N]
///       Per-span-name summary: calls, total time, self time (total
///       minus direct children), sorted by self time. Instant events are
///       listed separately with their counts.
///
///   mbta_trace <trace.json> --critical-path
///       Starts from the longest root span in the file and descends the
///       max-duration child at every level: the chain a latency
///       investigation should read first.
///
///   mbta_trace --diff <a.json> <b.json> [--ignore-cat CAT]
///       Compares the two traces as *sequences* — per track (matched by
///       thread name, not tid): event name, category, phase, nesting
///       depth, and args, in emission order. Timestamps, durations, and
///       ids are excluded, so two runs of a deterministic program must
///       diff clean even though their clocks differ. `--ignore-cat`
///       drops a category first (e.g. "pool": slice spans exist only on
///       multi-thread runs, so cross-thread-count diffs ignore them).
///
/// Exit codes: 0 ok / 1 usage / 2 bad input / 3 traces differ.
///
/// The span tree is rebuilt from the writer's custom "depth" field via a
/// stack (emission order within a track is begin order), not from
/// timestamps — the same reason --diff can exclude them.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/json_value.h"
#include "util/table.h"

namespace mbta {
namespace {

struct TraceEvent {
  std::string name;
  std::string cat;
  std::string ph;
  int depth = 0;
  double dur_us = 0.0;
  std::string args;  // normalized "key=value key=value" form

  // Filled by the tree pass.
  double child_dur_us = 0.0;
  std::vector<std::size_t> children;  // indices into the track's events
};

struct Track {
  std::string name;
  std::vector<TraceEvent> events;
};

/// Prints integers without a decimal point so args like {"tasks": 512}
/// normalize identically regardless of how the parser stored them.
std::string FormatNumber(double value) {
  if (std::floor(value) == value && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", value);
  return buffer;
}

/// Loads a trace file into name-keyed tracks, in the writer's track
/// order. Returns false with a message on parse/shape errors.
bool LoadTrace(const char* path, std::vector<Track>* tracks,
               std::string* error) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    *error = std::string("cannot open ") + path;
    return false;
  }
  std::string text;
  char buffer[1 << 16];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);

  JsonValue doc;
  if (!JsonValue::Parse(text, &doc, error)) {
    *error = std::string(path) + ": " + *error;
    return false;
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    *error = std::string(path) + ": missing traceEvents array";
    return false;
  }

  // First pass: thread_name metadata maps tids to track names.
  std::map<int, std::string> tid_names;
  for (const JsonValue& event : events->array_items) {
    const JsonValue* ph = event.Find("ph");
    const JsonValue* name = event.Find("name");
    if (ph == nullptr || name == nullptr) continue;
    if (ph->StringOr("") != "M" || name->StringOr("") != "thread_name") {
      continue;
    }
    const JsonValue* tid = event.Find("tid");
    const JsonValue* args = event.Find("args");
    const JsonValue* thread = args != nullptr ? args->Find("name") : nullptr;
    if (tid == nullptr || thread == nullptr) continue;
    tid_names[static_cast<int>(tid->NumberOr(-1.0))] =
        std::string(thread->StringOr("?"));
  }

  std::map<int, std::size_t> track_of_tid;
  for (const JsonValue& event : events->array_items) {
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr) continue;
    const std::string phase(ph->StringOr(""));
    if (phase != "X" && phase != "i") continue;
    const int tid =
        static_cast<int>(event.Find("tid") != nullptr
                             ? event.Find("tid")->NumberOr(-1.0)
                             : -1.0);
    auto it = track_of_tid.find(tid);
    if (it == track_of_tid.end()) {
      Track track;
      const auto name_it = tid_names.find(tid);
      track.name = name_it != tid_names.end()
                       ? name_it->second
                       : "tid_" + std::to_string(tid);
      tracks->push_back(std::move(track));
      it = track_of_tid.emplace(tid, tracks->size() - 1).first;
    }
    TraceEvent out;
    if (const JsonValue* name = event.Find("name")) {
      out.name = std::string(name->StringOr("?"));
    }
    if (const JsonValue* cat = event.Find("cat")) {
      out.cat = std::string(cat->StringOr(""));
    }
    out.ph = phase;
    if (const JsonValue* depth = event.Find("depth")) {
      out.depth = static_cast<int>(depth->NumberOr(0.0));
    }
    if (const JsonValue* dur = event.Find("dur")) {
      out.dur_us = dur->NumberOr(0.0);
    }
    if (const JsonValue* args = event.Find("args")) {
      for (const auto& [key, value] : args->object_items) {
        if (!out.args.empty()) out.args += " ";
        out.args += key + "=";
        out.args += value.is_string() ? std::string(value.StringOr(""))
                                      : FormatNumber(value.NumberOr(0.0));
      }
    }
    (*tracks)[it->second].events.push_back(std::move(out));
  }
  return true;
}

/// Links every complete span to its parent via the depth field and
/// accumulates direct-child durations (for self time).
void BuildTree(Track* track) {
  std::vector<std::size_t> stack;  // indices of open ancestor spans
  for (std::size_t i = 0; i < track->events.size(); ++i) {
    TraceEvent& event = track->events[i];
    while (!stack.empty() &&
           track->events[stack.back()].depth >= event.depth) {
      stack.pop_back();
    }
    if (event.ph != "X") continue;  // instants neither nest nor parent
    if (!stack.empty()) {
      TraceEvent& parent = track->events[stack.back()];
      parent.child_dur_us += event.dur_us;
      parent.children.push_back(i);
    }
    stack.push_back(i);
  }
}

int Summarize(const std::vector<Track>& tracks, int top) {
  struct NameStats {
    std::size_t calls = 0;
    double total_us = 0.0;
    double self_us = 0.0;
  };
  std::map<std::string, NameStats> spans;
  std::map<std::string, std::size_t> instants;
  for (const Track& track : tracks) {
    for (const TraceEvent& event : track.events) {
      if (event.ph == "i") {
        ++instants[event.name];
        continue;
      }
      NameStats& stats = spans[event.name];
      ++stats.calls;
      stats.total_us += event.dur_us;
      stats.self_us += event.dur_us - event.child_dur_us;
    }
  }

  std::vector<std::pair<std::string, NameStats>> ordered(spans.begin(),
                                                         spans.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second.self_us != b.second.self_us) {
                return a.second.self_us > b.second.self_us;
              }
              return a.first < b.first;
            });
  if (top > 0 && ordered.size() > static_cast<std::size_t>(top)) {
    ordered.resize(static_cast<std::size_t>(top));
  }

  Table table({"span", "calls", "total ms", "self ms"});
  for (const auto& [name, stats] : ordered) {
    table.AddRow({name, Table::Num(static_cast<std::int64_t>(stats.calls)),
                  Table::Num(stats.total_us / 1000.0),
                  Table::Num(stats.self_us / 1000.0)});
  }
  std::printf("%s", table.ToString().c_str());
  if (!instants.empty()) {
    Table itable({"instant", "count"});
    for (const auto& [name, count] : instants) {
      itable.AddRow({name, Table::Num(static_cast<std::int64_t>(count))});
    }
    std::printf("\n%s", itable.ToString().c_str());
  }
  std::size_t total_events = 0;
  for (const Track& track : tracks) total_events += track.events.size();
  std::printf("\n%zu tracks, %zu events\n", tracks.size(), total_events);
  return 0;
}

int CriticalPath(std::vector<Track>& tracks) {
  const Track* best_track = nullptr;
  std::size_t best_root = 0;
  double best_dur = -1.0;
  for (Track& track : tracks) {
    BuildTree(&track);
    for (std::size_t i = 0; i < track.events.size(); ++i) {
      const TraceEvent& event = track.events[i];
      if (event.ph != "X" || event.depth != 0) continue;
      if (event.dur_us > best_dur) {
        best_dur = event.dur_us;
        best_track = &track;
        best_root = i;
      }
    }
  }
  if (best_track == nullptr) {
    std::printf("no complete spans in trace\n");
    return 0;
  }

  std::printf("critical path (track %s):\n", best_track->name.c_str());
  Table table({"span", "total ms", "self ms"});
  std::size_t current = best_root;
  for (;;) {
    const TraceEvent& event = best_track->events[current];
    std::string indent(static_cast<std::size_t>(event.depth) * 2, ' ');
    table.AddRow({indent + event.name, Table::Num(event.dur_us / 1000.0),
                  Table::Num((event.dur_us - event.child_dur_us) / 1000.0)});
    if (event.children.empty()) break;
    std::size_t next = event.children.front();
    for (const std::size_t child : event.children) {
      if (best_track->events[child].dur_us >
          best_track->events[next].dur_us) {
        next = child;
      }
    }
    current = next;
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

/// One comparable line per event: everything deterministic, nothing
/// clock-derived.
std::vector<std::string> NormalizedSequence(const std::vector<Track>& tracks,
                                            const std::string& ignore_cat) {
  // Tracks match by name across files; sort so a tid permutation between
  // the two files cannot masquerade as a difference.
  std::vector<const Track*> ordered;
  for (const Track& track : tracks) ordered.push_back(&track);
  std::sort(ordered.begin(), ordered.end(),
            [](const Track* a, const Track* b) { return a->name < b->name; });
  std::vector<std::string> lines;
  for (const Track* track : ordered) {
    for (const TraceEvent& event : track->events) {
      if (!ignore_cat.empty() && event.cat == ignore_cat) continue;
      std::string line = track->name;
      line += "|" + std::to_string(event.depth);
      line += "|" + event.cat;
      line += "|" + event.ph;
      line += "|" + event.name;
      line += "|" + event.args;
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

int Diff(const char* path_a, const char* path_b,
         const std::string& ignore_cat) {
  std::vector<Track> tracks_a, tracks_b;
  std::string error;
  if (!LoadTrace(path_a, &tracks_a, &error) ||
      !LoadTrace(path_b, &tracks_b, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const std::vector<std::string> a = NormalizedSequence(tracks_a, ignore_cat);
  const std::vector<std::string> b = NormalizedSequence(tracks_b, ignore_cat);

  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      std::printf("traces differ at event %zu:\n  %s: %s\n  %s: %s\n", i,
                  path_a, a[i].c_str(), path_b, b[i].c_str());
      return 3;
    }
  }
  if (a.size() != b.size()) {
    std::printf("traces differ in length: %zu vs %zu events\n", a.size(),
                b.size());
    return 3;
  }
  std::printf("traces identical: %zu events\n", a.size());
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--top N] [--critical-path]\n"
               "       %s --diff <a.json> <b.json> [--ignore-cat CAT]\n"
               "exit codes: 0 ok, 1 usage, 2 bad input, 3 traces differ\n",
               argv0, argv0);
  return 1;
}

}  // namespace
}  // namespace mbta

int main(int argc, char** argv) {
  using namespace mbta;
  if (argc < 2) return Usage(argv[0]);

  if (std::string(argv[1]) == "--diff") {
    if (argc < 4) return Usage(argv[0]);
    std::string ignore_cat;
    for (int i = 4; i + 1 < argc; i += 2) {
      if (std::string(argv[i]) == "--ignore-cat") {
        ignore_cat = argv[i + 1];
      } else {
        return Usage(argv[0]);
      }
    }
    return Diff(argv[2], argv[3], ignore_cat);
  }

  int top = 0;
  bool critical_path = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--top" && i + 1 < argc) {
      top = std::atoi(argv[++i]);
    } else if (flag == "--critical-path") {
      critical_path = true;
    } else {
      return Usage(argv[0]);
    }
  }

  std::vector<Track> tracks;
  std::string error;
  if (!LoadTrace(argv[1], &tracks, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (critical_path) return CriticalPath(tracks);
  for (Track& track : tracks) BuildTree(&track);
  return Summarize(tracks, top);
}
