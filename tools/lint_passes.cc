#include "tools/lint_passes.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <utility>

#include "obs/json_value.h"
#include "obs/json_writer.h"

namespace mbta::lint {

namespace {

using FuncRef = std::pair<std::size_t, std::size_t>;  // (file, function)

const std::map<std::string, std::string>& TagRules() {
  static const std::map<std::string, std::string> kTags = {
      {"unordered-ok", "R1"}, {"nondet-ok", "R2"}, {"float-eq-ok", "R3"},
      {"stdout-ok", "R4"},    {"name-ok", "R5"},   {"include-ok", "R6"},
      {"clock-ok", "R7"},     {"thread-ok", "R8"}, {"alloc-ok", "R9"},
      {"taint-ok", "R10"},    {"lock-ok", "R11"},
  };
  return kTags;
}

/// Waiver lookup + usage bookkeeping shared by the whole-program passes.
/// `Consume` marks the waiver used — call it only when the waiver is
/// genuinely suppressing (or would suppress) a finding.
class WaiverBook {
 public:
  explicit WaiverBook(std::map<std::string, WaiverUseSet>* used)
      : used_(used) {}

  bool Has(const FileIndex& fi, int line, std::string_view tag) const {
    return Find(fi, line, tag) != 0;
  }

  bool Consume(const FileIndex& fi, int line, std::string_view tag) {
    const int at = Find(fi, line, tag);
    if (at == 0) return false;
    (*used_)[fi.path].emplace(at, std::string(tag));
    return true;
  }

 private:
  /// Returns the line the waiver comment sits on (the violating line or
  /// the line above), or 0 when absent.
  static int Find(const FileIndex& fi, int line, std::string_view tag) {
    for (const int l : {line, line - 1}) {
      const auto it = fi.lex.waivers.find(l);
      if (it == fi.lex.waivers.end()) continue;
      for (const Waiver& w : it->second) {
        if (w.tag == tag && w.has_reason) return l;
      }
    }
    return 0;
  }

  std::map<std::string, WaiverUseSet>* used_;
};

/// Token-cursor helpers over one file's stream.
struct TokenView {
  const std::vector<Token>& toks;

  std::size_t Size() const { return toks.size(); }
  const Token& Tok(std::size_t i) const { return toks[i]; }
  bool IsPunct(std::size_t i, std::string_view p) const {
    return i < Size() && toks[i].kind == Token::Kind::kPunct &&
           toks[i].text == p;
  }
  bool IsIdent(std::size_t i) const {
    return i < Size() && toks[i].kind == Token::Kind::kIdent;
  }
  bool IsIdent(std::size_t i, std::string_view name) const {
    return IsIdent(i) && toks[i].text == name;
  }

  std::size_t SkipTemplateArgs(std::size_t i) const {
    int depth = 0;
    for (; i < Size(); ++i) {
      if (IsPunct(i, "<")) ++depth;
      if (IsPunct(i, ">") && --depth == 0) return i + 1;
      if (IsPunct(i, ";")) return i;
    }
    return i;
  }

  std::size_t SkipBrackets(std::size_t i) const {  // i points at '['
    int depth = 0;
    for (; i < Size(); ++i) {
      if (IsPunct(i, "[")) ++depth;
      if (IsPunct(i, "]") && --depth == 0) return i + 1;
    }
    return i;
  }
};

/// for/while body token ranges inside [begin, end) of a token stream —
/// the same shape the per-file R9 computes, reused by the call-graph
/// extension to decide whether a call site sits in a loop.
std::vector<std::pair<std::size_t, std::size_t>> LoopBodies(
    const TokenView& v, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> bodies;
  for (std::size_t i = begin; i < end; ++i) {
    if (!(v.IsIdent(i, "for") || v.IsIdent(i, "while"))) continue;
    if (!v.IsPunct(i + 1, "(")) continue;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < end; ++j) {
      if (v.IsPunct(j, "(")) ++depth;
      if (v.IsPunct(j, ")") && --depth == 0) break;
    }
    if (j + 1 >= end) continue;
    const std::size_t body = j + 1;
    if (v.IsPunct(body, "{")) {
      int braces = 0;
      std::size_t k = body;
      for (; k < end; ++k) {
        if (v.IsPunct(k, "{")) ++braces;
        if (v.IsPunct(k, "}") && --braces == 0) break;
      }
      bodies.emplace_back(body + 1, k);
    } else {
      int braces = 0;
      int parens = 0;
      std::size_t k = body;
      for (; k < end; ++k) {
        if (v.IsPunct(k, "{")) ++braces;
        if (v.IsPunct(k, "}")) --braces;
        if (v.IsPunct(k, "(")) ++parens;
        if (v.IsPunct(k, ")")) --parens;
        if (v.IsPunct(k, ";") && braces == 0 && parens == 0) break;
      }
      bodies.emplace_back(body, k);
    }
  }
  return bodies;
}

bool InAnyRange(
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    std::size_t i) {
  for (const auto& [s, e] : ranges) {
    if (i >= s && i < e) return true;
  }
  return false;
}

std::string Where(const RepoIndex& index, const FunctionInfo& fn) {
  return fn.qualified + " (" + index.files[fn.file].path + ":" +
         std::to_string(fn.line) + ")";
}

// ---------------------------------------------------------------------------
// Pass state shared by AnalyzeRepo's stages.
// ---------------------------------------------------------------------------

struct PassState {
  const RepoIndex& index;
  WaiverBook book;
  std::vector<Violation>* out;

  // caller -> callees, name-resolved over the whole index.
  std::map<FuncRef, std::vector<FuncRef>> call_graph;
  // callee -> callers.
  std::map<FuncRef, std::vector<FuncRef>> reverse_graph;
  std::vector<FuncRef> entries;  // functions in src/core + src/flow
};

std::vector<FuncRef> ResolveCall(const RepoIndex& index,
                                 const CallSite& cs) {
  const auto it = index.functions_by_name.find(cs.name);
  if (it == index.functions_by_name.end()) return {};
  // Prefer candidates whose class matches an explicit `X::` qualifier;
  // when nothing matches (e.g. the qualifier is a namespace) keep the
  // whole candidate set — for taint and reachability we want the union
  // over possible targets.
  if (!cs.qualifier.empty()) {
    std::vector<FuncRef> exact;
    for (const FuncRef& ref : it->second) {
      if (index.Fn(ref).class_name == cs.qualifier) exact.push_back(ref);
    }
    if (!exact.empty()) return exact;
  }
  return it->second;
}

void BuildCallGraph(PassState* st) {
  const RepoIndex& index = st->index;
  for (std::size_t fid = 0; fid < index.files.size(); ++fid) {
    const FileIndex& fi = index.files[fid];
    const bool entry_file =
        fi.scope.subsystem == "core" || fi.scope.subsystem == "flow";
    for (std::size_t k = 0; k < fi.functions.size(); ++k) {
      const FuncRef ref{fid, k};
      if (entry_file) st->entries.push_back(ref);
      std::set<FuncRef> seen;
      for (const CallSite& cs : fi.functions[k].calls) {
        for (const FuncRef& target : ResolveCall(index, cs)) {
          if (target == ref || !seen.insert(target).second) continue;
          st->call_graph[ref].push_back(target);
          st->reverse_graph[target].push_back(ref);
        }
      }
    }
  }
}

std::set<FuncRef> Closure(const std::map<FuncRef, std::vector<FuncRef>>& g,
                          const std::vector<FuncRef>& seeds,
                          const std::set<FuncRef>& barriers) {
  std::set<FuncRef> out;
  std::deque<FuncRef> queue;
  for (const FuncRef& s : seeds) {
    if (barriers.count(s) != 0) continue;
    if (out.insert(s).second) queue.push_back(s);
  }
  while (!queue.empty()) {
    const FuncRef cur = queue.front();
    queue.pop_front();
    const auto it = g.find(cur);
    if (it == g.end()) continue;
    for (const FuncRef& next : it->second) {
      if (barriers.count(next) != 0) continue;
      if (out.insert(next).second) queue.push_back(next);
    }
  }
  return out;
}

/// Shortest entry-to-target path in the barrier-free graph (BFS from all
/// entries at once). Empty when unreachable.
std::vector<FuncRef> EntryPath(const PassState& st, const FuncRef& target,
                               const std::set<FuncRef>& barriers) {
  std::map<FuncRef, FuncRef> parent;
  std::set<FuncRef> visited;
  std::deque<FuncRef> queue;
  for (const FuncRef& e : st.entries) {
    if (barriers.count(e) != 0) continue;
    if (visited.insert(e).second) queue.push_back(e);
  }
  const FuncRef kNone{static_cast<std::size_t>(-1), 0};
  FuncRef found = kNone;
  for (const FuncRef& e : queue) {
    if (e == target) found = e;
  }
  while (found == kNone && !queue.empty()) {
    const FuncRef cur = queue.front();
    queue.pop_front();
    const auto it = st.call_graph.find(cur);
    if (it == st.call_graph.end()) continue;
    for (const FuncRef& next : it->second) {
      if (barriers.count(next) != 0 || !visited.insert(next).second) {
        continue;
      }
      parent.emplace(next, cur);
      if (next == target) {
        found = next;
        break;
      }
      queue.push_back(next);
    }
  }
  if (found == kNone) return {};
  std::vector<FuncRef> path{target};
  for (auto it = parent.find(target); it != parent.end();
       it = parent.find(path.back())) {
    path.push_back(it->second);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// ---------------------------------------------------------------------------
// R10 — determinism taint.
// ---------------------------------------------------------------------------

struct TaintSink {
  std::size_t file = 0;
  int line = 0;
  std::string what;             // the banned token / container name
  std::vector<FuncRef> fns;     // functions the occurrence attaches to
  bool waived = false;          // taint-ok at the sink line
};

void CollectTaintSinks(PassState* st, std::vector<TaintSink>* sinks) {
  static const std::set<std::string> kBannedTypes = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock"};
  static const std::set<std::string> kBannedCalls = {
      "rand",      "srand",     "drand48",   "gettimeofday", "localtime",
      "gmtime",    "time",      "clock",     "sleep_for",    "sleep_until"};
  const RepoIndex& index = st->index;
  for (std::size_t fid = 0; fid < index.files.size(); ++fid) {
    const FileIndex& fi = index.files[fid];
    const TokenView v{fi.lex.tokens};
    // Unordered containers whose declaration carries an unordered-ok
    // waiver: iterating one is invisible to R1 by design, so the taint
    // pass treats the (waived) iteration as a nondeterminism source.
    std::set<std::string> waived_unordered;

    auto attach = [&](std::size_t tok_idx, const std::string& what,
                      int line) {
      TaintSink sink;
      sink.file = fid;
      sink.line = line;
      sink.what = what;
      for (std::size_t k = 0; k < fi.functions.size(); ++k) {
        const FunctionInfo& fn = fi.functions[k];
        if (tok_idx >= fn.body_begin && tok_idx < fn.body_end) {
          sink.fns.push_back({fid, k});
        }
      }
      if (sink.fns.empty()) {
        // Class/namespace scope (e.g. `using Clock = steady_clock;`):
        // the occurrence belongs to every function defined in the file.
        for (std::size_t k = 0; k < fi.functions.size(); ++k) {
          sink.fns.push_back({fid, k});
        }
      }
      sink.waived = st->book.Has(fi, line, "taint-ok");
      sinks->push_back(std::move(sink));
    };

    for (std::size_t i = 0; i < v.Size(); ++i) {
      if (!v.IsIdent(i)) continue;
      const Token& t = v.Tok(i);
      const bool member =
          i > 0 && (v.IsPunct(i - 1, ".") || v.IsPunct(i - 1, "->"));
      if (kBannedTypes.count(t.text) != 0 && !member) {
        attach(i, "std::" + t.text, t.line);
        continue;
      }
      if (kBannedCalls.count(t.text) != 0 && !member &&
          v.IsPunct(i + 1, "(")) {
        attach(i, t.text + "()", t.line);
        continue;
      }
      if ((t.text == "unordered_map" || t.text == "unordered_set" ||
           t.text == "unordered_multimap" ||
           t.text == "unordered_multiset") &&
          v.IsPunct(i + 1, "<") &&
          st->book.Has(fi, t.line, "unordered-ok")) {
        const std::size_t j = v.SkipTemplateArgs(i + 1);
        if (v.IsIdent(j)) waived_unordered.insert(v.Tok(j).text);
        continue;
      }
      // Iteration over a waived unordered container: range-for range
      // expression or explicit .begin()/.cbegin()/.rbegin().
      if (t.text == "for" && v.IsPunct(i + 1, "(")) {
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < v.Size(); ++j) {
          if (v.IsPunct(j, "(")) ++depth;
          if (v.IsPunct(j, ")") && --depth == 0) break;
          if (depth == 1 && v.IsPunct(j, ";")) break;
          if (depth == 1 && v.IsPunct(j, ":")) {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;
        int depth2 = 1;
        for (std::size_t j = colon + 1; j < v.Size() && depth2 > 0; ++j) {
          if (v.IsPunct(j, "(")) ++depth2;
          if (v.IsPunct(j, ")")) --depth2;
          if (v.IsIdent(j) && waived_unordered.count(v.Tok(j).text) != 0 &&
              !v.IsPunct(j - 1, ".") && !v.IsPunct(j - 1, "->")) {
            attach(j, "iteration over unordered '" + v.Tok(j).text + "'",
                   v.Tok(j).line);
            break;
          }
        }
        continue;
      }
      if (waived_unordered.count(t.text) != 0 && v.IsPunct(i + 1, ".") &&
          (v.IsIdent(i + 2, "begin") || v.IsIdent(i + 2, "cbegin") ||
           v.IsIdent(i + 2, "rbegin"))) {
        attach(i, "iteration over unordered '" + t.text + "'", t.line);
      }
    }
  }
}

void PassTaint(PassState* st) {
  std::vector<TaintSink> sinks;
  CollectTaintSinks(st, &sinks);

  // Barrier waivers: taint-ok on a function-definition line removes the
  // function from the graph (paths through it are trusted).
  std::set<FuncRef> barriers;
  const RepoIndex& index = st->index;
  for (std::size_t fid = 0; fid < index.files.size(); ++fid) {
    const FileIndex& fi = index.files[fid];
    for (std::size_t k = 0; k < fi.functions.size(); ++k) {
      if (st->book.Has(fi, fi.functions[k].line, "taint-ok")) {
        barriers.insert({fid, k});
      }
    }
  }

  // Usage accounting runs against the unwaived graph: a sink waiver is
  // used iff the sink is entry-reachable; a barrier is used iff the
  // function lies on some entry-to-sink path.
  const std::set<FuncRef> reachable_all =
      Closure(st->call_graph, st->entries, {});
  {
    std::vector<FuncRef> sink_fns;
    for (const TaintSink& s : sinks) {
      if (s.waived) continue;
      for (const FuncRef& f : s.fns) sink_fns.push_back(f);
    }
    const std::set<FuncRef> tainted_all =
        Closure(st->reverse_graph, sink_fns, {});
    for (const TaintSink& s : sinks) {
      if (!s.waived) continue;
      for (const FuncRef& f : s.fns) {
        if (reachable_all.count(f) != 0) {
          st->book.Consume(index.files[s.file], s.line, "taint-ok");
          break;
        }
      }
    }
    for (const FuncRef& b : barriers) {
      if (reachable_all.count(b) != 0 && tainted_all.count(b) != 0) {
        st->book.Consume(index.files[b.first], index.Fn(b).line,
                         "taint-ok");
      }
    }
  }

  // Findings against the waived graph.
  const std::set<FuncRef> reachable =
      Closure(st->call_graph, st->entries, barriers);
  std::set<std::tuple<std::size_t, int, std::string>> reported;
  for (const TaintSink& s : sinks) {
    if (s.waived) continue;
    const FuncRef* hit = nullptr;
    for (const FuncRef& f : s.fns) {
      if (barriers.count(f) == 0 && reachable.count(f) != 0) {
        hit = &f;
        break;
      }
    }
    if (hit == nullptr) continue;
    if (!reported.emplace(s.file, s.line, s.what).second) continue;
    const std::vector<FuncRef> path = EntryPath(*st, *hit, barriers);
    std::string chain;
    for (const FuncRef& f : path) {
      if (!chain.empty()) chain += " -> ";
      chain += Where(index, index.Fn(f));
    }
    const FileIndex& fi = index.files[s.file];
    chain += " -> '" + s.what + "' (" + fi.path + ":" +
             std::to_string(s.line) + ")";
    st->out->push_back(Violation{
        fi.path, s.line, "R10",
        "nondeterminism sink '" + s.what +
            "' is reachable from a solver entry point: " + chain +
            "; route time through the injectable Clock seam "
            "(src/util/clock.h) and randomness through seeded mbta::Rng, "
            "or waive an audited frame with "
            "// mbta-lint: taint-ok(reason)"});
  }
}

// ---------------------------------------------------------------------------
// R11 — lock discipline.
// ---------------------------------------------------------------------------

bool HoldsMutex(const FunctionInfo& fn, const std::string& mutex,
                std::size_t before_token) {
  for (const std::string& m : fn.requires_mutexes) {
    if (m == mutex) return true;
  }
  for (const LockAcquisition& l : fn.locks) {
    if (l.mutex == mutex && l.token < before_token) return true;
  }
  return false;
}

void PassGuardedWrites(PassState* st) {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "emplace", "clear",  "insert",
      "erase",     "resize",       "assign",  "pop_back", "push",
      "pop",       "reset",        "swap",    "store"};
  const RepoIndex& index = st->index;
  for (std::size_t fid = 0; fid < index.files.size(); ++fid) {
    const FileIndex& fi = index.files[fid];
    const TokenView v{fi.lex.tokens};
    for (std::size_t k = 0; k < fi.functions.size(); ++k) {
      const FunctionInfo& fn = fi.functions[k];
      if (fn.is_ctor_or_dtor || fn.no_tsa || fn.class_name.empty()) {
        continue;
      }
      const auto git = index.guards_by_class.find(fn.class_name);
      if (git == index.guards_by_class.end()) continue;
      const auto& guards = git->second;
      for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
        if (!v.IsIdent(i)) continue;
        const auto fit = guards.find(v.Tok(i).text);
        if (fit == guards.end()) continue;
        // `other.field` is a different object; `Class::field` is not a
        // write target in this grammar either.
        if (i > 0 && (v.IsPunct(i - 1, ".") || v.IsPunct(i - 1, "->") ||
                      v.IsPunct(i - 1, "::"))) {
          continue;
        }
        // Write forms: =, op=, ++/-- (either side), [..] =, mutating
        // member calls. `==`/`!=` lex as single tokens, so a bare `=`
        // punct is always assignment.
        bool write = false;
        std::size_t j = i + 1;
        if (v.IsPunct(j, "[")) j = v.SkipBrackets(j);
        static const std::set<std::string> kCompound = {"+", "-", "*", "/",
                                                        "%", "&", "|", "^"};
        if (v.IsPunct(j, "=")) {
          write = true;
        } else if (j < v.Size() && v.Tok(j).kind == Token::Kind::kPunct &&
                   kCompound.count(v.Tok(j).text) != 0 &&
                   (v.IsPunct(j + 1, "=") ||
                    (v.Tok(j).text != "*" && v.Tok(j).text != "&" &&
                     v.IsPunct(j + 1, v.Tok(j).text) &&
                     (v.Tok(j).text == "+" || v.Tok(j).text == "-")))) {
          // `x += e`, `x++` / `x--` (postfix).
          write = true;
        } else if (i >= 2 && v.IsPunct(i - 1, "+") && v.IsPunct(i - 2, "+")) {
          write = true;  // prefix ++
        } else if (i >= 2 && v.IsPunct(i - 1, "-") && v.IsPunct(i - 2, "-")) {
          write = true;  // prefix --
        } else if ((v.IsPunct(j, ".") || v.IsPunct(j, "->")) &&
                   v.IsIdent(j + 1) &&
                   kMutators.count(v.Tok(j + 1).text) != 0 &&
                   v.IsPunct(j + 2, "(")) {
          write = true;
        }
        if (!write) continue;
        const std::string& mutex = fit->second;
        if (HoldsMutex(fn, mutex, i)) continue;
        const int line = v.Tok(i).line;
        if (st->book.Consume(fi, line, "lock-ok")) continue;
        if (st->book.Consume(fi, fn.line, "lock-ok")) continue;
        st->out->push_back(Violation{
            fi.path, line, "R11",
            "field '" + fit->first + "' is declared GUARDED_BY(" + mutex +
                ") but " + fn.qualified +
                " writes it without holding the mutex: acquire it "
                "(MutexLock / MBTA_OBS_LOCK) before the write, annotate "
                "the function MBTA_REQUIRES(" +
                mutex +
                "), or waive with // mbta-lint: lock-ok(reason)"});
      }
    }
  }
}

void PassRequiresCallSites(PassState* st) {
  const RepoIndex& index = st->index;
  for (std::size_t fid = 0; fid < index.files.size(); ++fid) {
    const FileIndex& fi = index.files[fid];
    for (std::size_t k = 0; k < fi.functions.size(); ++k) {
      const FunctionInfo& fn = fi.functions[k];
      if (fn.no_tsa) continue;
      std::set<std::string> reported;
      for (const CallSite& cs : fn.calls) {
        // Precise resolutions only: unqualified self-calls and explicit
        // `Class::fn` qualifiers. Member calls through arbitrary objects
        // are skipped — name-level resolution cannot tell whose mutex
        // the contract names.
        if (cs.member) continue;
        const std::string want_class =
            cs.qualifier.empty() ? fn.class_name : cs.qualifier;
        if (want_class.empty()) continue;
        const auto it = index.functions_by_name.find(cs.name);
        if (it == index.functions_by_name.end()) continue;
        for (const FuncRef& ref : it->second) {
          const FunctionInfo& target = index.Fn(ref);
          if (target.class_name != want_class) continue;
          for (const std::string& m : target.requires_mutexes) {
            if (HoldsMutex(fn, m, cs.token)) continue;
            const std::string key =
                std::to_string(cs.line) + "|" + target.qualified + "|" + m;
            if (!reported.insert(key).second) continue;
            if (st->book.Consume(fi, cs.line, "lock-ok")) continue;
            if (st->book.Consume(fi, fn.line, "lock-ok")) continue;
            st->out->push_back(Violation{
                fi.path, cs.line, "R11",
                target.qualified + " REQUIRES(" + m + ") but " +
                    fn.qualified +
                    " calls it without holding the mutex: acquire it "
                    "before the call, propagate MBTA_REQUIRES(" +
                    m +
                    ") to the caller, or waive with "
                    "// mbta-lint: lock-ok(reason)"});
          }
        }
      }
    }
  }
}

void PassLockOrder(PassState* st) {
  struct Witness {
    std::size_t file = 0;
    int line = 0;
    FuncRef fn{0, 0};
  };
  // (first-acquired, second-acquired) -> first witness site, with mutex
  // names qualified as Class::field so the order is comparable across
  // TUs. Unqualifiable acquisitions (locals, parameters) are skipped.
  std::map<std::pair<std::string, std::string>, Witness> pairs;
  const RepoIndex& index = st->index;
  for (std::size_t fid = 0; fid < index.files.size(); ++fid) {
    const FileIndex& fi = index.files[fid];
    for (std::size_t k = 0; k < fi.functions.size(); ++k) {
      const FunctionInfo& fn = fi.functions[k];
      if (fn.no_tsa) continue;
      std::vector<std::pair<std::string, const LockAcquisition*>> quals;
      const auto mit = index.mutexes_by_class.find(fn.class_name);
      for (const LockAcquisition& l : fn.locks) {
        if (mit != index.mutexes_by_class.end() &&
            mit->second.count(l.mutex) != 0) {
          quals.emplace_back(fn.class_name + "::" + l.mutex, &l);
        }
      }
      for (std::size_t a = 0; a < quals.size(); ++a) {
        for (std::size_t b = a + 1; b < quals.size(); ++b) {
          if (quals[a].first == quals[b].first) continue;
          const auto key = std::make_pair(quals[a].first, quals[b].first);
          if (pairs.count(key) != 0) continue;
          pairs.emplace(key,
                        Witness{fid, quals[b].second->line, {fid, k}});
        }
      }
    }
  }
  for (const auto& [key, witness] : pairs) {
    if (key.first >= key.second) continue;  // handle each unordered pair once
    const auto rit = pairs.find(std::make_pair(key.second, key.first));
    if (rit == pairs.end()) continue;
    // Report at the site acquiring in the lexicographically-reversed
    // direction so the finding is stable across runs.
    const Witness& w = rit->second;
    const FileIndex& fi = index.files[w.file];
    const FunctionInfo& fn = index.Fn(w.fn);
    const Witness& other = pairs.at(key);
    const FileIndex& ofi = index.files[other.file];
    if (st->book.Consume(fi, w.line, "lock-ok")) continue;
    if (st->book.Consume(fi, fn.line, "lock-ok")) continue;
    st->out->push_back(Violation{
        fi.path, w.line, "R11",
        "inconsistent lock order across TUs: " + fn.qualified +
            " acquires " + key.second + " then " + key.first + " (" +
            fi.path + ":" + std::to_string(w.line) + ") but " +
            index.Fn(other.fn).qualified + " acquires " + key.first +
            " then " + key.second + " (" + ofi.path + ":" +
            std::to_string(other.line) +
            "); pick one global order or waive with "
            "// mbta-lint: lock-ok(reason)"});
  }
}

// ---------------------------------------------------------------------------
// Call-graph-aware R9 — allocation reachable from a hot loop.
// ---------------------------------------------------------------------------

struct AllocHit {
  int line = 0;
  std::string what;
};

/// First unwaived heap-allocation site anywhere in a function body (the
/// same token patterns as the per-file R9, not restricted to loops —
/// calling an allocating function from a loop IS a per-iteration
/// allocation). Consuming an alloc-ok waiver here marks it used.
std::optional<AllocHit> FindAlloc(PassState* st, const FunctionInfo& fn) {
  static const std::set<std::string> kContainers = {
      "vector", "string", "deque", "list", "forward_list", "map",
      "multimap", "set", "multiset", "queue", "priority_queue", "stack",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "basic_string"};
  const FileIndex& fi = st->index.files[fn.file];
  const TokenView v{fi.lex.tokens};
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (!v.IsIdent(i)) continue;
    const Token& t = v.Tok(i);
    std::string what;
    if (t.text == "new") {
      what = "operator new";
    } else if ((t.text == "make_unique" || t.text == "make_shared") &&
               (v.IsPunct(i + 1, "<") || v.IsPunct(i + 1, "("))) {
      what = "std::" + t.text;
    } else if (kContainers.count(t.text) != 0 && i >= 2 &&
               v.IsIdent(i - 2, "std") && v.IsPunct(i - 1, "::")) {
      bool constructs =
          v.IsPunct(i + 1, "(") || v.IsPunct(i + 1, "{") ||
          (i + 1 < v.Size() && v.Tok(i + 1).kind == Token::Kind::kIdent);
      if (!constructs && v.IsPunct(i + 1, "<")) {
        const std::size_t after = v.SkipTemplateArgs(i + 1);
        constructs = after < v.Size() &&
                     (v.Tok(after).kind == Token::Kind::kIdent ||
                      v.IsPunct(after, "(") || v.IsPunct(after, "{"));
      }
      if (constructs) what = "std::" + t.text;
    }
    if (what.empty()) continue;
    if (st->book.Consume(fi, t.line, "alloc-ok")) continue;
    return AllocHit{t.line, what};
  }
  return std::nullopt;
}

bool CalleeSubsystem(const RepoIndex& index, const FuncRef& ref) {
  const std::string& s = index.files[ref.first].scope.subsystem;
  return s == "core" || s == "flow" || s == "graph";
}

/// DFS (depth-capped) for an allocating chain starting at `ref`; fills
/// `chain` with the frames ending at the allocating function.
bool AllocChain(PassState* st, const FuncRef& ref, int depth,
                std::set<FuncRef>* visited, std::vector<FuncRef>* chain,
                AllocHit* hit) {
  if (depth <= 0 || !visited->insert(ref).second) return false;
  const FunctionInfo& fn = st->index.Fn(ref);
  chain->push_back(ref);
  if (auto alloc = FindAlloc(st, fn)) {
    *hit = *alloc;
    return true;
  }
  for (const CallSite& cs : fn.calls) {
    for (const FuncRef& next : ResolveCall(st->index, cs)) {
      if (!CalleeSubsystem(st->index, next)) continue;
      if (AllocChain(st, next, depth - 1, visited, chain, hit)) return true;
    }
  }
  chain->pop_back();
  return false;
}

void PassCallGraphAlloc(PassState* st) {
  const RepoIndex& index = st->index;
  for (std::size_t fid = 0; fid < index.files.size(); ++fid) {
    const FileIndex& fi = index.files[fid];
    if (fi.scope.subsystem != "core" && fi.scope.subsystem != "flow") {
      continue;
    }
    const TokenView v{fi.lex.tokens};
    for (std::size_t k = 0; k < fi.functions.size(); ++k) {
      const FunctionInfo& fn = fi.functions[k];
      const auto loops = LoopBodies(v, fn.body_begin, fn.body_end);
      if (loops.empty()) continue;
      std::set<std::pair<int, std::string>> reported;
      for (const CallSite& cs : fn.calls) {
        if (!InAnyRange(loops, cs.token)) continue;
        if (cs.name == fn.name) continue;  // direct recursion
        for (const FuncRef& target : ResolveCall(index, cs)) {
          if (!CalleeSubsystem(index, target)) continue;
          if (target == FuncRef{fid, k}) continue;
          std::set<FuncRef> visited{{fid, k}};
          std::vector<FuncRef> chain;
          AllocHit hit;
          if (!AllocChain(st, target, 4, &visited, &chain, &hit)) continue;
          const std::string target_name = index.Fn(target).qualified;
          if (!reported.emplace(cs.line, target_name).second) break;
          bool waived = st->book.Consume(fi, cs.line, "alloc-ok") ||
                        st->book.Consume(fi, fn.line, "alloc-ok");
          for (const FuncRef& f : chain) {
            if (waived) break;
            waived = st->book.Consume(index.files[f.first],
                                      index.Fn(f).line, "alloc-ok");
          }
          if (waived) break;
          std::string msg = "call to '" + cs.name +
                            "' inside a loop of " + fn.qualified +
                            " reaches heap allocation: ";
          for (const FuncRef& f : chain) {
            msg += Where(index, index.Fn(f)) + " -> ";
          }
          msg += hit.what + " (" +
                 index.files[chain.back().first].path + ":" +
                 std::to_string(hit.line) +
                 "); hoist the work out of the loop, use the solve's "
                 "Arena scratch, or waive a cold path with "
                 "// mbta-lint: alloc-ok(reason)";
          st->out->push_back(Violation{fi.path, cs.line, "R9", msg});
          break;  // one finding per call site
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R12 — waiver hygiene + ledger assembly.
// ---------------------------------------------------------------------------

void PassWaiverHygiene(const RepoIndex& index,
                       const std::map<std::string, WaiverUseSet>& used,
                       std::vector<Violation>* out,
                       std::vector<LedgerEntry>* ledger) {
  for (const FileIndex& fi : index.files) {
    const auto uit = used.find(fi.path);
    static const WaiverUseSet kEmpty;
    const WaiverUseSet& file_used =
        uit == used.end() ? kEmpty : uit->second;
    for (const auto& [line, waivers] : fi.lex.waivers) {
      for (const Waiver& w : waivers) {
        const std::string rule = RuleForTag(w.tag);
        if (rule.empty()) {
          out->push_back(Violation{
              fi.path, line, "R12",
              "unknown waiver tag '" + w.tag +
                  "': known tags are listed in CONTRIBUTING.md, "
                  "\"Static analysis\" (R12 is not waivable — fix or "
                  "delete the comment)"});
          continue;
        }
        if (!w.has_reason) {
          out->push_back(Violation{
              fi.path, line, "R12",
              "waiver '" + w.tag +
                  "' has no reason: write "
                  "// mbta-lint: " +
                  w.tag + "(why this is safe)"});
          continue;
        }
        LedgerEntry entry;
        entry.rule = rule;
        entry.tag = w.tag;
        entry.file = fi.path;
        entry.line = line;
        entry.reason = w.reason;
        entry.used = file_used.count({line, w.tag}) != 0;
        if (!entry.used) {
          out->push_back(Violation{
              fi.path, line, "R12",
              "unused waiver '" + w.tag + "' (" + rule +
                  " would not fire here): suppressions can only shrink "
                  "without review — delete the comment"});
        }
        ledger->push_back(std::move(entry));
      }
    }
  }
}

}  // namespace

std::string RuleForTag(std::string_view tag) {
  const auto& tags = TagRules();
  const auto it = tags.find(std::string(tag));
  return it == tags.end() ? std::string() : it->second;
}

AnalyzeResult AnalyzeRepo(const std::vector<SourceFile>& files) {
  AnalyzeResult result;
  std::map<std::string, WaiverUseSet> used;

  // Per-file rules over everything (non-library files no-op inside).
  for (const SourceFile& f : files) {
    const LexResult lex = Lex(f.content);
    std::vector<Violation> v = LintLexed(f.path, lex, &used[f.path]);
    result.violations.insert(result.violations.end(), v.begin(), v.end());
  }

  // Whole-program passes over the library subset.
  const RepoIndex index = BuildRepoIndex(files);
  PassState st{index, WaiverBook(&used), &result.violations, {}, {}, {}};
  BuildCallGraph(&st);
  PassTaint(&st);
  PassGuardedWrites(&st);
  PassRequiresCallSites(&st);
  PassLockOrder(&st);
  PassCallGraphAlloc(&st);
  PassWaiverHygiene(index, used, &result.violations, &result.waivers);

  std::sort(result.violations.begin(), result.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  std::sort(result.waivers.begin(), result.waivers.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              return std::tie(a.file, a.line, a.tag) <
                     std::tie(b.file, b.line, b.tag);
            });
  return result;
}

// ---------------------------------------------------------------------------
// Ledger.
// ---------------------------------------------------------------------------

std::string LedgerToJson(const std::vector<LedgerEntry>& waivers) {
  std::vector<const LedgerEntry*> sorted;
  sorted.reserve(waivers.size());
  for (const LedgerEntry& e : waivers) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const LedgerEntry* a, const LedgerEntry* b) {
              return std::tie(a->file, a->rule, a->tag, a->reason) <
                     std::tie(b->file, b->rule, b->tag, b->reason);
            });
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Number(std::int64_t{1});
  w.Key("tool");
  w.String("mbta_lint");
  w.Key("waivers");
  w.BeginArray();
  for (const LedgerEntry* e : sorted) {
    w.BeginObject();
    w.Key("rule");
    w.String(e->rule);
    w.Key("tag");
    w.String(e->tag);
    w.Key("file");
    w.String(e->file);
    w.Key("reason");
    w.String(e->reason);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString() + "\n";
}

bool ParseLedgerJson(std::string_view text, std::vector<LedgerEntry>* out,
                     std::string* error) {
  JsonValue doc;
  if (!JsonValue::Parse(text, &doc, error)) return false;
  if (!doc.is_object()) {
    if (error != nullptr) *error = "ledger root is not an object";
    return false;
  }
  const JsonValue* waivers = doc.Find("waivers");
  if (waivers == nullptr || !waivers->is_array()) {
    if (error != nullptr) *error = "ledger has no \"waivers\" array";
    return false;
  }
  out->clear();
  for (const JsonValue& item : waivers->array_items) {
    LedgerEntry e;
    if (const JsonValue* v = item.Find("rule")) {
      e.rule = std::string(v->StringOr(""));
    }
    if (const JsonValue* v = item.Find("tag")) {
      e.tag = std::string(v->StringOr(""));
    }
    if (const JsonValue* v = item.Find("file")) {
      e.file = std::string(v->StringOr(""));
    }
    if (const JsonValue* v = item.Find("reason")) {
      e.reason = std::string(v->StringOr(""));
    }
    if (e.rule.empty() || e.tag.empty() || e.file.empty()) {
      if (error != nullptr) {
        *error = "ledger entry missing rule/tag/file";
      }
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

std::vector<std::string> DiffLedger(
    const std::vector<LedgerEntry>& committed,
    const std::vector<LedgerEntry>& head) {
  using Key = std::tuple<std::string, std::string, std::string, std::string>;
  const auto key = [](const LedgerEntry& e) {
    return Key{e.file, e.rule, e.tag, e.reason};
  };
  const auto describe = [](const Key& k) {
    return std::get<1>(k) + " " + std::get<2>(k) + " in " + std::get<0>(k) +
           " (" + std::get<3>(k) + ")";
  };
  std::map<Key, int> counts;
  for (const LedgerEntry& e : committed) ++counts[key(e)];
  for (const LedgerEntry& e : head) --counts[key(e)];
  std::vector<std::string> out;
  for (const auto& [k, n] : counts) {
    if (n > 0) {
      out.push_back("ledger entry no longer present at head: " +
                    describe(k) +
                    " — regenerate with mbta_lint --update-ledger "
                    "LINT_LEDGER.json");
    } else if (n < 0) {
      out.push_back("waiver at head missing from LINT_LEDGER.json: " +
                    describe(k) +
                    " — new suppressions must be committed to the ledger "
                    "(mbta_lint --update-ledger LINT_LEDGER.json)");
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SARIF.
// ---------------------------------------------------------------------------

std::string SarifReport(const std::vector<Violation>& violations) {
  static const std::vector<std::pair<const char*, const char*>> kRules = {
      {"R1", "No unordered containers in library code"},
      {"R2", "No nondeterminism sources in solver code"},
      {"R3", "No floating-point equality against literals"},
      {"R4", "No stdout writes in library code"},
      {"R5", "Observability names follow the slash-path grammar"},
      {"R6", "Headers carry guards and include what they use"},
      {"R7", "No raw monotonic clocks or sleeps outside the Clock seam"},
      {"R8", "No raw threading primitives outside the ThreadPool seam"},
      {"R9", "No heap allocation in (or reachable from) solver loops"},
      {"R10", "No call path from a solver entry to a nondeterminism sink"},
      {"R11", "GUARDED_BY/REQUIRES lock discipline holds across TUs"},
      {"R12", "Every waiver is known, reasoned, and still used"},
  };
  JsonWriter w;
  w.BeginObject();
  w.Key("version");
  w.String("2.1.0");
  w.Key("$schema");
  w.String(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  w.Key("runs");
  w.BeginArray();
  w.BeginObject();
  w.Key("tool");
  w.BeginObject();
  w.Key("driver");
  w.BeginObject();
  w.Key("name");
  w.String("mbta_lint");
  w.Key("informationUri");
  w.String("CONTRIBUTING.md");
  w.Key("rules");
  w.BeginArray();
  for (const auto& [id, desc] : kRules) {
    w.BeginObject();
    w.Key("id");
    w.String(id);
    w.Key("shortDescription");
    w.BeginObject();
    w.Key("text");
    w.String(desc);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  w.Key("results");
  w.BeginArray();
  for (const Violation& v : violations) {
    w.BeginObject();
    w.Key("ruleId");
    w.String(v.rule);
    w.Key("level");
    w.String("error");
    w.Key("message");
    w.BeginObject();
    w.Key("text");
    w.String(v.message);
    w.EndObject();
    w.Key("locations");
    w.BeginArray();
    w.BeginObject();
    w.Key("physicalLocation");
    w.BeginObject();
    w.Key("artifactLocation");
    w.BeginObject();
    w.Key("uri");
    w.String(v.file);
    w.Key("uriBaseId");
    w.String("%SRCROOT%");
    w.EndObject();
    w.Key("region");
    w.BeginObject();
    w.Key("startLine");
    w.Number(std::int64_t{v.line < 1 ? 1 : v.line});
    w.EndObject();
    w.EndObject();
    w.EndObject();
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.EndArray();
  w.EndObject();
  return w.TakeString() + "\n";
}

// ---------------------------------------------------------------------------
// Mechanical fixes.
// ---------------------------------------------------------------------------

namespace {

std::string GuardMacroFor(std::string_view path) {
  std::string rel(path);
  if (rel.rfind("./", 0) == 0) rel = rel.substr(2);
  if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
  std::string macro = "MBTA_";
  for (const char c : rel) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      macro += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    } else {
      macro += '_';
    }
  }
  macro += '_';
  return macro;
}

std::vector<std::string> SplitLines(std::string_view content) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < content.size()) {
        lines.emplace_back(content.substr(start));
      }
      break;
    }
    lines.emplace_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

bool IsStdIncludeLine(const std::string& line) {
  const std::size_t hash = line.find_first_not_of(" \t");
  if (hash == std::string::npos || line[hash] != '#') return false;
  return line.find("include") != std::string::npos &&
         line.find('<') != std::string::npos;
}

}  // namespace

std::string ApplyMechanicalFixes(std::string_view path,
                                 std::string_view content) {
  const FileScope scope = ClassifyPath(path);
  if (!scope.library || !scope.header) return std::string(content);

  const LexResult lex = Lex(content);

  // Guard detection, mirroring R6.
  bool guarded = false;
  for (const PpDirective& d : lex.directives) {
    if (d.text.find("pragma") != std::string::npos &&
        d.text.find("once") != std::string::npos) {
      guarded = true;
      break;
    }
  }
  if (!guarded && lex.directives.size() >= 2) {
    const std::string& first = lex.directives[0].text;
    const std::string& second = lex.directives[1].text;
    const std::size_t ifndef = first.find("ifndef");
    if (ifndef != std::string::npos &&
        second.find("define") != std::string::npos) {
      std::string macro = first.substr(ifndef + 6);
      macro.erase(0, macro.find_first_not_of(" \t"));
      macro.erase(macro.find_last_not_of(" \t") + 1);
      guarded = !macro.empty() && second.find(macro) != std::string::npos;
    }
  }

  // Missing std includes per the curated IWYU table.
  std::set<std::string> included;
  for (const PpDirective& d : lex.directives) {
    const std::size_t inc = d.text.find("include");
    if (inc == std::string::npos) continue;
    const std::size_t open = d.text.find('<', inc);
    const std::size_t close = d.text.find('>', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    included.insert(d.text.substr(open + 1, close - open - 1));
  }
  std::set<std::string> missing;
  const auto& providers = StdIncludeProviders();
  const TokenView v{lex.tokens};
  for (std::size_t i = 0; i + 2 < v.Size(); ++i) {
    if (!v.IsIdent(i, "std") || !v.IsPunct(i + 1, "::")) continue;
    if (!v.IsIdent(i + 2)) continue;
    const auto it = providers.find(v.Tok(i + 2).text);
    if (it == providers.end()) continue;
    bool satisfied = false;
    for (const std::string& h : it->second) {
      if (included.count(h) != 0) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) missing.insert(it->second.front());
  }

  if (guarded && missing.empty()) return std::string(content);

  std::vector<std::string> lines = SplitLines(content);

  if (!missing.empty()) {
    // Merge into the first contiguous `#include <...>` block, sorted;
    // with no such block, insert after the guard (#define / #pragma
    // once) or at the top.
    std::size_t block_begin = lines.size();
    std::size_t block_end = lines.size();
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (IsStdIncludeLine(lines[i])) {
        block_begin = i;
        block_end = i + 1;
        while (block_end < lines.size() &&
               IsStdIncludeLine(lines[block_end])) {
          ++block_end;
        }
        break;
      }
    }
    std::set<std::string> block;
    for (const std::string& h : missing) block.insert("#include <" + h + ">");
    if (block_begin < lines.size()) {
      for (std::size_t i = block_begin; i < block_end; ++i) {
        block.insert(lines[i]);
      }
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(block_begin),
                  lines.begin() + static_cast<std::ptrdiff_t>(block_end));
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(block_begin),
                   block.begin(), block.end());
    } else {
      std::size_t at = 0;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (lines[i].find("#define") != std::string::npos ||
            (lines[i].find("#pragma") != std::string::npos &&
             lines[i].find("once") != std::string::npos)) {
          at = i + 1;
          break;
        }
      }
      std::vector<std::string> insert;
      insert.emplace_back("");
      insert.insert(insert.end(), block.begin(), block.end());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                   insert.begin(), insert.end());
    }
  }

  std::string out = JoinLines(lines);
  if (!guarded) {
    const std::string macro = GuardMacroFor(path);
    out = "#ifndef " + macro + "\n#define " + macro + "\n\n" + out +
          "\n#endif  // " + macro + "\n";
  }
  return out;
}

}  // namespace mbta::lint
