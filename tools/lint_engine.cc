#include "tools/lint_engine.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "tools/lint_index.h"

namespace mbta::lint {

namespace {

// ---------------------------------------------------------------------------
// The per-file rule engine. Lexing lives in tools/lint_index.{h,cc} — the
// same token stream feeds both these rules and the whole-program passes.
// ---------------------------------------------------------------------------

class Linter {
 public:
  Linter(std::string_view path, const LexResult& lex, WaiverUseSet* used)
      : path_(path), scope_(ClassifyPath(path)), lex_(lex), used_(used) {}

  std::vector<Violation> Run() {
    if (scope_.library) {
      RuleUnordered();
      if (scope_.subsystem != "util" && scope_.subsystem != "obs") {
        RuleNondeterminism();
      }
      if (scope_.subsystem != "util") RuleFloatEq();
      RuleStdout();
      RuleObservabilityNames();
      if (scope_.subsystem != "util" && scope_.subsystem != "obs") {
        RuleRawClock();
      }
      if (scope_.subsystem != "util") RuleRawThreads();
      if (scope_.subsystem == "core" || scope_.subsystem == "flow") {
        RuleLoopAlloc();
      }
      if (scope_.header) RuleHeaderHygiene();
    }
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.line, a.rule, a.message) <
                       std::tie(b.line, b.rule, b.message);
              });
    return std::move(violations_);
  }

 private:
  bool Waived(int line, std::string_view tag) {
    for (const int l : {line, line - 1}) {
      const auto it = lex_.waivers.find(l);
      if (it == lex_.waivers.end()) continue;
      for (const Waiver& w : it->second) {
        if (w.tag == tag && w.has_reason) {
          if (used_ != nullptr) used_->emplace(l, w.tag);
          return true;
        }
      }
    }
    return false;
  }

  void Report(int line, std::string rule, std::string_view tag,
              std::string message) {
    if (Waived(line, tag)) return;
    violations_.push_back(
        Violation{std::string(path_), line, std::move(rule),
                  std::move(message)});
  }

  const Token& Tok(std::size_t i) const { return lex_.tokens[i]; }
  std::size_t Size() const { return lex_.tokens.size(); }
  bool IsPunct(std::size_t i, std::string_view p) const {
    return i < Size() && Tok(i).kind == Token::Kind::kPunct &&
           Tok(i).text == p;
  }
  bool IsIdent(std::size_t i, std::string_view name) const {
    return i < Size() && Tok(i).kind == Token::Kind::kIdent &&
           Tok(i).text == name;
  }

  /// Skips a balanced <...> starting at `i` (which must point at '<').
  /// Returns the index one past the closing '>'.
  std::size_t SkipTemplateArgs(std::size_t i) const {
    int depth = 0;
    while (i < Size()) {
      if (IsPunct(i, "<")) ++depth;
      if (IsPunct(i, ">")) {
        --depth;
        if (depth == 0) return i + 1;
      }
      // Give up on stray comparisons: a template argument list in a
      // declaration never contains ';'.
      if (IsPunct(i, ";")) return i;
      ++i;
    }
    return i;
  }

  // R1 — unordered containers in library code.
  void RuleUnordered() {
    std::set<std::string> unordered_vars;
    for (std::size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != Token::Kind::kIdent) continue;
      if (t.text == "unordered_map" || t.text == "unordered_set" ||
          t.text == "unordered_multimap" || t.text == "unordered_multiset") {
        if (!IsPunct(i + 1, "<")) continue;  // e.g. a bare mention
        Report(t.line, "R1", "unordered-ok",
               "std::" + t.text +
                   " in library code: iteration order is nondeterministic; "
                   "use std::map/std::set, sorted extraction, or a vector "
                   "scan, or waive a genuinely order-blind use with "
                   "// mbta-lint: unordered-ok(reason)");
        // Track the declared variable name, if any, so iteration over it
        // can be flagged even when the declaration itself is waived.
        std::size_t j = SkipTemplateArgs(i + 1);
        if (j < Size() && Tok(j).kind == Token::Kind::kIdent) {
          unordered_vars.insert(Tok(j).text);
        }
        continue;
      }
      // Range-for whose range expression names a tracked variable.
      if (t.text == "for" && IsPunct(i + 1, "(")) {
        int depth = 0;
        std::size_t colon = 0;
        for (std::size_t j = i + 1; j < Size(); ++j) {
          if (IsPunct(j, "(")) ++depth;
          if (IsPunct(j, ")")) {
            --depth;
            if (depth == 0) break;
          }
          if (depth == 1 && IsPunct(j, ";")) break;  // classic for
          if (depth == 1 && IsPunct(j, ":")) {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;
        int depth2 = 1;
        for (std::size_t j = colon + 1; j < Size() && depth2 > 0; ++j) {
          if (IsPunct(j, "(")) ++depth2;
          if (IsPunct(j, ")")) --depth2;
          if (Tok(j).kind == Token::Kind::kIdent &&
              unordered_vars.count(Tok(j).text) &&
              !IsPunct(j - 1, ".") && !IsPunct(j - 1, "->")) {
            Report(Tok(j).line, "R1", "unordered-ok",
                   "range-for over unordered container '" + Tok(j).text +
                       "': iteration order is nondeterministic");
            break;
          }
        }
        continue;
      }
      // Explicit iteration (begin/cbegin/rbegin) on a tracked variable.
      if (unordered_vars.count(t.text) && IsPunct(i + 1, ".") &&
          i + 2 < Size() &&
          (IsIdent(i + 2, "begin") || IsIdent(i + 2, "cbegin") ||
           IsIdent(i + 2, "rbegin"))) {
        Report(t.line, "R1", "unordered-ok",
               "iterator over unordered container '" + t.text +
                   "': iteration order is nondeterministic");
      }
    }
  }

  // R2 — nondeterminism sources in solver code.
  void RuleNondeterminism() {
    static const std::set<std::string> kBannedTypes = {
        "random_device", "system_clock"};
    static const std::set<std::string> kBannedCalls = {
        "rand", "srand", "drand48", "gettimeofday", "localtime", "gmtime",
        "time", "clock"};
    for (std::size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != Token::Kind::kIdent) continue;
      const bool member = i > 0 && (IsPunct(i - 1, ".") ||
                                    IsPunct(i - 1, "->"));
      if (kBannedTypes.count(t.text) && !member) {
        Report(t.line, "R2", "nondet-ok",
               "std::" + t.text +
                   " in solver code: all randomness/time must flow through "
                   "seeded mbta::Rng or the obs timers (waive with "
                   "// mbta-lint: nondet-ok(reason))");
        continue;
      }
      if (kBannedCalls.count(t.text) && IsPunct(i + 1, "(") && !member) {
        Report(t.line, "R2", "nondet-ok",
               t.text +
                   "() in solver code: wall-clock/global-RNG reads make "
                   "runs irreproducible; use seeded mbta::Rng "
                   "(src/util/rng.h) or a ScopedPhase timer");
      }
    }
  }

  // R3 — float equality against literals.
  void RuleFloatEq() {
    for (std::size_t i = 0; i < Size(); ++i) {
      if (Tok(i).kind != Token::Kind::kPunct) continue;
      if (Tok(i).text != "==" && Tok(i).text != "!=") continue;
      const bool lhs = i > 0 && IsFloatLiteralToken(Tok(i - 1));
      const bool rhs = i + 1 < Size() && IsFloatLiteralToken(Tok(i + 1));
      if (lhs || rhs) {
        Report(Tok(i).line, "R3", "float-eq-ok",
               "floating-point " + Tok(i).text +
                   " comparison: use a tolerance (std::abs(a - b) <= eps) "
                   "or waive an exact sentinel check with "
                   "// mbta-lint: float-eq-ok(reason)");
      }
    }
  }

  // R4 — stdout writes in library code.
  void RuleStdout() {
    for (std::size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != Token::Kind::kIdent) continue;
      const bool member = i > 0 && (IsPunct(i - 1, ".") ||
                                    IsPunct(i - 1, "->"));
      if (member) continue;
      const bool call = IsPunct(i + 1, "(");
      if (t.text == "cout" ||
          (call && (t.text == "printf" || t.text == "puts" ||
                    t.text == "putchar")) ||
          (call && t.text == "fprintf" && IsIdent(i + 2, "stdout"))) {
        Report(t.line, "R4", "stdout-ok",
               t.text +
                   " in library code: libraries report through return "
                   "values, SolveStats, or caller-supplied streams; only "
                   "CLI/bench/tools binaries may write to stdout");
      }
    }
  }

  // R5 — observability key grammar (counters, phases, fault points).
  void RuleObservabilityNames() {
    // Tracer span/instant names and span-arg keys share the counter
    // grammar: traces are diffed by name, so names must be stable
    // identifiers, not prose.
    static const std::set<std::string> kKeyApis = {
        "Add", "Set", "SetGauge", "Value", "Gauge", "Has",
        "Record", "TotalMs", "BeginSpan", "Instant", "RegisterThread",
        "Arg"};
    // FaultInjector APIs take the fault-point name as their first string
    // argument; MaybeFail is a free function, the rest are members.
    static const std::set<std::string> kFaultApis = {
        "Arm", "ArmProbabilistic", "Disarm", "ShouldFail", "HitCount",
        "MaybeFail"};
    for (std::size_t i = 0; i + 2 < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != Token::Kind::kIdent) continue;
      if (kFaultApis.count(t.text) && IsPunct(i + 1, "(") &&
          (t.text == "MaybeFail" || IsPunct(i - 1, ".") ||
           IsPunct(i - 1, "->"))) {
        // First string literal inside the call parens is the point name.
        int depth = 0;
        for (std::size_t j = i + 1; j < Size(); ++j) {
          if (IsPunct(j, "(")) ++depth;
          if (IsPunct(j, ")") && --depth == 0) break;
          if (Tok(j).kind == Token::Kind::kString) {
            if (!IsValidCounterKey(Tok(j).text)) {
              Report(Tok(j).line, "R5", "name-ok",
                     "fault-point name \"" + Tok(j).text +
                         "\" does not match the slash-path grammar "
                         "[a-z0-9_]+(/[a-z0-9_]+)* from CONTRIBUTING.md");
            } else if (!IsRegisteredFaultNamespace(Tok(j).text)) {
              Report(Tok(j).line, "R5", "name-ok",
                     "fault-point \"" + Tok(j).text +
                         "\" is outside the registered namespaces "
                         "(flow/, io/, service/, solver/ — "
                         "CONTRIBUTING.md \"Robustness\"); register a new "
                         "namespace there before introducing one");
            }
            break;
          }
        }
        continue;
      }
      if (t.text == "ScopedPhase" || t.text == "ScopedSpan") {
        // First string literal inside the constructor parens. Phase
        // labels are single segments (nesting builds the slash path);
        // span names are full slash paths (the tracer does not nest
        // names, only depths).
        const bool is_span = t.text == "ScopedSpan";
        std::size_t j = i + 1;
        while (j < Size() && !IsPunct(j, "(")) ++j;
        int depth = 0;
        for (; j < Size(); ++j) {
          if (IsPunct(j, "(")) ++depth;
          if (IsPunct(j, ")") && --depth == 0) break;
          if (Tok(j).kind == Token::Kind::kString) {
            if (is_span && !IsValidCounterKey(Tok(j).text)) {
              Report(Tok(j).line, "R5", "name-ok",
                     "span name \"" + Tok(j).text +
                         "\" does not match the slash-path grammar "
                         "[a-z0-9_]+(/[a-z0-9_]+)* from CONTRIBUTING.md");
            } else if (!is_span && !IsValidPhaseLabel(Tok(j).text)) {
              Report(Tok(j).line, "R5", "name-ok",
                     "phase label \"" + Tok(j).text +
                         "\" is not a lower_snake_case segment "
                         "([a-z0-9_]+); nesting builds slash paths, do not "
                         "embed '/' in a label");
            }
            break;
          }
        }
        continue;
      }
      if (!kKeyApis.count(t.text)) continue;
      if (!(IsPunct(i - 1, ".") || IsPunct(i - 1, "->"))) continue;
      if (!IsPunct(i + 1, "(")) continue;
      if (Tok(i + 2).kind != Token::Kind::kString) continue;
      if (!IsValidCounterKey(Tok(i + 2).text)) {
        Report(Tok(i + 2).line, "R5", "name-ok",
               "counter/phase key \"" + Tok(i + 2).text +
                   "\" does not match the slash-path grammar "
                   "[a-z0-9_]+(/[a-z0-9_]+)* from CONTRIBUTING.md");
      }
    }
  }

  // R7 — raw monotonic clocks / sleeps outside the Clock seam.
  void RuleRawClock() {
    static const std::set<std::string> kBannedClocks = {
        "steady_clock", "high_resolution_clock"};
    static const std::set<std::string> kBannedSleeps = {
        "sleep_for", "sleep_until"};
    for (std::size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != Token::Kind::kIdent) continue;
      if (kBannedClocks.count(t.text)) {
        Report(t.line, "R7", "clock-ok",
               "std::chrono::" + t.text +
                   " outside src/util and src/obs: read time through the "
                   "injectable Clock (src/util/clock.h) or a WallTimer so "
                   "tests can drive deadlines with FakeClock (waive with "
                   "// mbta-lint: clock-ok(reason))");
        continue;
      }
      // `.sleep_for(...)` / `->sleep_for(...)` is some other object's
      // member, not std::this_thread's blocking call.
      const bool member =
          i > 0 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->"));
      if (!member && kBannedSleeps.count(t.text) && IsPunct(i + 1, "(")) {
        Report(t.line, "R7", "clock-ok",
               t.text +
                   "() outside src/util and src/obs: blocking sleeps do "
                   "not belong in library code; poll a DeadlineGate or "
                   "push waiting to the caller");
      }
    }
  }

  // R8 — raw threading primitives outside the ThreadPool seam.
  void RuleRawThreads() {
    static const std::set<std::string> kBanned = {"thread", "jthread",
                                                  "async"};
    for (std::size_t i = 2; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != Token::Kind::kIdent || !kBanned.count(t.text)) continue;
      // Only the qualified std:: forms: `std::this_thread` is one
      // identifier and member calls like `pool.async(...)` never carry
      // the std:: prefix, so neither trips this.
      if (!(IsIdent(i - 2, "std") && IsPunct(i - 1, "::"))) continue;
      Report(t.line, "R8", "thread-ok",
             "std::" + t.text +
                 " outside src/util: spawn parallelism through "
                 "mbta::ThreadPool (src/util/thread_pool.h) so slicing "
                 "stays deterministic and the determinism gate in "
                 "tests/differential_test.cc keeps meaning something "
                 "(waive with // mbta-lint: thread-ok(reason))");
    }
  }

  // R9 — heap allocation inside solver inner loops (src/core, src/flow).
  void RuleLoopAlloc() {
    // Token ranges of every for/while body (braced block or single
    // statement). Nested loops produce nested ranges; membership in any
    // range means "inside a loop body". Loop *headers* are exempt —
    // `for (std::size_t i ...` and range-for over a container are fine.
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (std::size_t i = 0; i < Size(); ++i) {
      if (!(IsIdent(i, "for") || IsIdent(i, "while"))) continue;
      if (!IsPunct(i + 1, "(")) continue;
      int depth = 0;
      std::size_t j = i + 1;
      for (; j < Size(); ++j) {
        if (IsPunct(j, "(")) ++depth;
        if (IsPunct(j, ")") && --depth == 0) break;
      }
      if (j + 1 >= Size()) continue;
      const std::size_t body = j + 1;
      if (IsPunct(body, "{")) {
        int braces = 0;
        std::size_t k = body;
        for (; k < Size(); ++k) {
          if (IsPunct(k, "{")) ++braces;
          if (IsPunct(k, "}") && --braces == 0) break;
        }
        bodies.emplace_back(body + 1, k);
      } else {
        // Single-statement body up to its ';' (the do-while tail lands
        // here with an empty range, which is harmless).
        int braces = 0;
        int parens = 0;
        std::size_t k = body;
        for (; k < Size(); ++k) {
          if (IsPunct(k, "{")) ++braces;
          if (IsPunct(k, "}")) --braces;
          if (IsPunct(k, "(")) ++parens;
          if (IsPunct(k, ")")) --parens;
          if (IsPunct(k, ";") && braces == 0 && parens == 0) break;
        }
        bodies.emplace_back(body, k);
      }
    }
    if (bodies.empty()) return;
    const auto in_body = [&bodies](std::size_t i) {
      for (const auto& [s, e] : bodies) {
        if (i >= s && i < e) return true;
      }
      return false;
    };
    static const std::set<std::string> kContainers = {
        "vector", "string", "deque", "list", "forward_list", "map",
        "multimap", "set", "multiset", "queue", "priority_queue", "stack",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset", "basic_string"};
    constexpr std::string_view kRemedy =
        ": solver inner loops must not touch the heap — use the solve's "
        "Arena scratch (util/arena.h) or hoist the allocation out of the "
        "loop; waive a genuinely cold path with "
        "// mbta-lint: alloc-ok(reason)";
    for (std::size_t i = 0; i < Size(); ++i) {
      const Token& t = Tok(i);
      if (t.kind != Token::Kind::kIdent || !in_body(i)) continue;
      if (t.text == "new") {
        // `.new`/`->new` cannot occur (keyword), so every mention is the
        // allocating expression (or a placement form — also suspect).
        Report(t.line, "R9", "alloc-ok",
               "operator new in a solver inner loop" + std::string(kRemedy));
        continue;
      }
      if ((t.text == "make_unique" || t.text == "make_shared") &&
          (IsPunct(i + 1, "<") || IsPunct(i + 1, "("))) {
        Report(t.line, "R9", "alloc-ok",
               "std::" + t.text + " in a solver inner loop" +
                   std::string(kRemedy));
        continue;
      }
      // std::-qualified container construction / declaration:
      // `std::vector<T> tmp`, `std::string(...)`, `std::string s`.
      // References and type mentions followed by `&`/`*`/`>` stay silent.
      if (kContainers.count(t.text) && i >= 2 && IsIdent(i - 2, "std") &&
          IsPunct(i - 1, "::")) {
        const bool constructs =
            IsPunct(i + 1, "(") || IsPunct(i + 1, "{") ||
            (i + 1 < Size() && Tok(i + 1).kind == Token::Kind::kIdent);
        // A template-id is only a construction if what follows the
        // closing '>' is a declarator or brace/paren initializer.
        if (!constructs && IsPunct(i + 1, "<")) {
          const std::size_t after = SkipTemplateArgs(i + 1);
          if (after < Size() &&
              (Tok(after).kind == Token::Kind::kIdent ||
               IsPunct(after, "(") || IsPunct(after, "{"))) {
            Report(t.line, "R9", "alloc-ok",
                   "std::" + t.text +
                       " constructed in a solver inner loop" +
                       std::string(kRemedy));
          }
          continue;
        }
        if (constructs) {
          Report(t.line, "R9", "alloc-ok",
                 "std::" + t.text + " constructed in a solver inner loop" +
                     std::string(kRemedy));
        }
      }
    }
  }

  // R6 — header hygiene: guard + curated IWYU.
  void RuleHeaderHygiene() {
    // Include guard: #pragma once anywhere, or the first directive pair
    // being #ifndef X / #define X.
    bool guarded = false;
    for (const PpDirective& d : lex_.directives) {
      if (d.text.find("pragma") != std::string::npos &&
          d.text.find("once") != std::string::npos) {
        guarded = true;
        break;
      }
    }
    if (!guarded && lex_.directives.size() >= 2) {
      const std::string& first = lex_.directives[0].text;
      const std::string& second = lex_.directives[1].text;
      const std::size_t ifndef = first.find("ifndef");
      if (ifndef != std::string::npos &&
          second.find("define") != std::string::npos) {
        std::string macro = first.substr(ifndef + 6);
        macro.erase(0, macro.find_first_not_of(" \t"));
        macro.erase(macro.find_last_not_of(" \t") + 1);
        guarded = !macro.empty() &&
                  second.find(macro) != std::string::npos;
      }
    }
    if (!guarded) {
      Report(1, "R6", "include-ok",
             "header has no include guard: use "
             "#ifndef MBTA_<PATH>_<FILE>_H_ / #define ... or #pragma once");
    }

    // Curated IWYU: std name -> acceptable providing headers.
    std::set<std::string> included;
    for (const PpDirective& d : lex_.directives) {
      const std::size_t inc = d.text.find("include");
      if (inc == std::string::npos) continue;
      const std::size_t open = d.text.find('<', inc);
      const std::size_t close = d.text.find('>', open);
      if (open == std::string::npos || close == std::string::npos) continue;
      included.insert(d.text.substr(open + 1, close - open - 1));
    }
    std::set<std::string> reported;
    for (std::size_t i = 0; i + 2 < Size(); ++i) {
      if (!IsIdent(i, "std") || !IsPunct(i + 1, "::")) continue;
      const Token& name = Tok(i + 2);
      if (name.kind != Token::Kind::kIdent) continue;
      const auto& providers = StdIncludeProviders();
      const auto it = providers.find(name.text);
      if (it == providers.end()) continue;
      bool satisfied = false;
      for (const std::string& h : it->second) {
        if (included.count(h)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied || !reported.insert(name.text).second) continue;
      Report(name.line, "R6", "include-ok",
             "uses std::" + name.text + " but does not include <" +
                 it->second.front() +
                 ">: headers must be self-contained (include what you use)");
    }
  }

  std::string_view path_;
  FileScope scope_;
  const LexResult& lex_;
  WaiverUseSet* used_;
  std::vector<Violation> violations_;
};

}  // namespace

const std::map<std::string, std::vector<std::string>>&
StdIncludeProviders() {
  static const std::map<std::string, std::vector<std::string>> kProviders = {
      {"vector", {"vector"}},
      {"string", {"string"}},
      {"to_string", {"string"}},
      {"string_view", {"string_view"}},
      {"map", {"map"}},
      {"multimap", {"map"}},
      {"set", {"set"}},
      {"multiset", {"set"}},
      {"unordered_map", {"unordered_map"}},
      {"unordered_set", {"unordered_set"}},
      {"optional", {"optional"}},
      {"nullopt", {"optional"}},
      {"span", {"span"}},
      {"unique_ptr", {"memory"}},
      {"shared_ptr", {"memory"}},
      {"weak_ptr", {"memory"}},
      {"make_unique", {"memory"}},
      {"make_shared", {"memory"}},
      {"function", {"functional"}},
      {"pair", {"utility"}},
      {"make_pair", {"utility"}},
      {"tuple", {"tuple"}},
      {"array", {"array"}},
      {"mt19937", {"random"}},
      {"mt19937_64", {"random"}},
      {"thread", {"thread"}},
      {"mutex", {"mutex"}},
      {"lock_guard", {"mutex"}},
      {"scoped_lock", {"mutex"}},
      {"unique_lock", {"mutex"}},
      {"atomic", {"atomic"}},
      {"numeric_limits", {"limits"}},
      {"size_t", {"cstddef", "cstdio", "cstdlib", "cstring"}},
      {"ptrdiff_t", {"cstddef"}},
      {"int8_t", {"cstdint"}},
      {"int16_t", {"cstdint"}},
      {"int32_t", {"cstdint"}},
      {"int64_t", {"cstdint"}},
      {"uint8_t", {"cstdint"}},
      {"uint16_t", {"cstdint"}},
      {"uint32_t", {"cstdint"}},
      {"uint64_t", {"cstdint"}},
  };
  return kProviders;
}

std::vector<Violation> LintFile(std::string_view path,
                                std::string_view content) {
  const LexResult lex = Lex(content);
  return LintLexed(path, lex, nullptr);
}

std::vector<Violation> LintLexed(std::string_view path, const LexResult& lex,
                                 WaiverUseSet* used) {
  return Linter(path, lex, used).Run();
}

bool IsValidCounterKey(std::string_view key) {
  if (key.empty() || key.front() == '/' || key.back() == '/') return false;
  bool segment_empty = true;
  for (const char c : key) {
    if (c == '/') {
      if (segment_empty) return false;
      segment_empty = true;
      continue;
    }
    if (!(std::islower(static_cast<unsigned char>(c)) ||
          std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
    segment_empty = false;
  }
  return !segment_empty;
}

bool IsValidPhaseLabel(std::string_view label) {
  return IsValidCounterKey(label) &&
         label.find('/') == std::string_view::npos;
}

bool IsRegisteredFaultNamespace(std::string_view point) {
  static const std::set<std::string, std::less<>> kNamespaces = {
      "flow", "io", "service", "solver"};
  return kNamespaces.count(point.substr(0, point.find('/'))) > 0;
}

std::vector<std::string> CollectFiles(const std::vector<std::string>& paths,
                                      std::vector<std::string>* errors) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  auto want = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc";
  };
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && want(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec && errors != nullptr) {
        errors->push_back(p + ": " + ec.message());
      }
    } else if (errors != nullptr) {
      errors->push_back(p + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace mbta::lint
