#ifndef MBTA_TOOLS_LINT_PASSES_H_
#define MBTA_TOOLS_LINT_PASSES_H_

#include <string>
#include <string_view>
#include <vector>

#include "tools/lint_engine.h"
#include "tools/lint_index.h"

/// The whole-program passes of mbta_lint, layered on the repo index
/// (tools/lint_index.h): the determinism-taint pass (R10), the
/// lock-discipline pass (R11), the call-graph-aware extension of R9, and
/// waiver hygiene (R12) with the committed LINT_LEDGER.json budget.
/// Semantics and approximations are documented per pass in
/// CONTRIBUTING.md, "Static analysis".
namespace mbta::lint {

/// One waiver comment found in library code, as enumerated in the
/// committed ledger. `line` and `used` are head-state diagnostics and
/// are not serialized: the ledger is keyed by (rule, tag, file, reason)
/// so ordinary edits that shift lines do not churn it.
struct LedgerEntry {
  std::string rule;    // "R1" .. "R11" (the rule the tag suppresses)
  std::string tag;     // "unordered-ok", "taint-ok", ...
  std::string file;    // repo-relative path
  int line = 0;        // head position (diagnostic only)
  std::string reason;  // text inside (...)
  bool used = false;   // did the waiver suppress anything this run?
};

/// The waiver tag a rule accepts, or "" for unknown tags. R12 itself is
/// unwaivable.
std::string RuleForTag(std::string_view tag);

struct AnalyzeResult {
  std::vector<Violation> violations;  // per-file rules + all passes
  std::vector<LedgerEntry> waivers;   // every waiver in library code
};

/// Runs the full stack over `files` (paths + contents; no filesystem
/// access): per-file rules R1–R9 on every file, then the repo index and
/// the whole-program passes R10/R11/call-graph-R9 over the library
/// subset, then R12 over the collected waivers. Violations come back
/// sorted by (file, line, rule, message); waivers by (file, line, tag).
AnalyzeResult AnalyzeRepo(const std::vector<SourceFile>& files);

// ---------------------------------------------------------------------------
// Waiver ledger (LINT_LEDGER.json).
// ---------------------------------------------------------------------------

/// Serializes the waiver set as the committed ledger document: entries
/// sorted by (file, rule, tag, reason), schema_version 1.
std::string LedgerToJson(const std::vector<LedgerEntry>& waivers);

/// Parses a ledger document written by LedgerToJson. Lines are not part
/// of the format; parsed entries carry line 0.
bool ParseLedgerJson(std::string_view text, std::vector<LedgerEntry>* out,
                     std::string* error);

/// Compares the committed ledger against head state. Returns one
/// human-readable message per discrepancy (entry added at head, entry in
/// the ledger no longer present); empty means in sync.
std::vector<std::string> DiffLedger(const std::vector<LedgerEntry>& committed,
                                    const std::vector<LedgerEntry>& head);

// ---------------------------------------------------------------------------
// SARIF (GitHub code-scanning schema 2.1.0).
// ---------------------------------------------------------------------------

/// Renders violations as a SARIF 2.1.0 document with one run, the full
/// rule catalog in tool.driver.rules, and one error-level result per
/// violation.
std::string SarifReport(const std::vector<Violation>& violations);

// ---------------------------------------------------------------------------
// Mechanical fixes (mbta_lint --fix).
// ---------------------------------------------------------------------------

/// Applies the mechanical fix subset to one library header: a missing
/// include guard is added (MBTA_<PATH>_H_ from the repo-relative path)
/// and std includes missing per R6's curated IWYU table are inserted
/// into the existing <...> include block in sorted order. Returns the
/// fixed content (identical to the input when nothing applies); running
/// it twice is the identity on the second run.
std::string ApplyMechanicalFixes(std::string_view path,
                                 std::string_view content);

}  // namespace mbta::lint

#endif  // MBTA_TOOLS_LINT_PASSES_H_
