/// Dynamic market maintenance: workers quit and requesters withdraw jobs
/// all day; re-solving from scratch after every event would both waste
/// compute and reshuffle assignments people already agreed to. This
/// example streams departure events through the incremental repair API
/// and compares it against full re-solves on value, stability of existing
/// assignments (Jaccard), and wall-clock.
///
///   $ ./build/examples/dynamic_market

#include <cstdio>

#include "core/greedy_solver.h"
#include "core/repair.h"
#include "gen/market_generator.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace mbta;

  const LaborMarket market = GenerateMarket(UpworkLikeConfig(1000, 3));
  const MbtaProblem problem{
      &market, {.alpha = 0.5, .kind = ObjectiveKind::kSubmodular}};
  const MutualBenefitObjective objective = problem.MakeObjective();

  Assignment current = GreedySolver().Solve(problem);
  const double initial_value = objective.Value(current);
  std::printf("initial assignment: %zu pairs, MB = %.1f\n\n",
              current.size(), initial_value);

  std::printf("%5s  %-22s  %10s  %9s  %11s  %10s\n", "event", "kind",
              "MB after", "pairs", "churn (1-J)", "repair ms");

  Rng rng(7);
  double total_repair_ms = 0.0;
  constexpr int kEvents = 12;
  for (int event = 0; event < kEvents; ++event) {
    WallTimer timer;
    Assignment next;
    char description[64];
    if (rng.NextBool(0.6)) {
      const WorkerId w =
          static_cast<WorkerId>(rng.NextBounded(market.NumWorkers()));
      next = RemoveWorkerAndRepair(objective, current, w);
      std::snprintf(description, sizeof(description), "worker %u quits", w);
    } else {
      const TaskId t =
          static_cast<TaskId>(rng.NextBounded(market.NumTasks()));
      next = RemoveTaskAndRepair(objective, current, t);
      std::snprintf(description, sizeof(description), "job %u withdrawn", t);
    }
    const double ms = timer.ElapsedMs();
    total_repair_ms += ms;
    const AssignmentDiff diff = DiffAssignments(current, next);
    std::printf("%5d  %-22s  %10.1f  %9zu  %11.4f  %10.3f\n", event,
                description, objective.Value(next), next.size(),
                1.0 - diff.jaccard, ms);
    current = next;
  }

  // What would a full re-solve cost, and how much would it reshuffle?
  WallTimer timer;
  const Assignment resolved = GreedySolver().Solve(problem);
  const double resolve_ms = timer.ElapsedMs();
  const AssignmentDiff reshuffle = DiffAssignments(current, resolved);

  std::printf("\n%d repairs took %.2f ms total; one full greedy re-solve "
              "takes %.2f ms\n",
              kEvents, total_repair_ms, resolve_ms);
  std::printf("a re-solve now would change %.1f%% of the standing "
              "assignments (Jaccard %.3f) for %.2f%% more value\n",
              100.0 * (1.0 - reshuffle.jaccard), reshuffle.jaccard,
              100.0 * (objective.Value(resolved) / objective.Value(current) -
                       1.0));
  std::printf("takeaway: local repair keeps commitments stable at a "
              "small value discount — re-solve on a schedule, repair on "
              "events.\n");
  return 0;
}
