/// Microtask labeling platform, end to end: generate an MTurk-like batch,
/// assign workers (mutual-benefit-aware vs random), let the simulated
/// crowd answer, run truth inference, and compare the resulting label
/// quality — the requester-side payoff the paper's introduction motivates.
///
///   $ ./build/examples/microtask_labeling

#include <cstdio>

#include "core/baseline_solvers.h"
#include "core/greedy_solver.h"
#include "gen/market_generator.h"
#include "market/metrics.h"
#include "sim/aggregation.h"
#include "sim/answers.h"

int main() {
  using namespace mbta;

  const LaborMarket market = GenerateMarket(MTurkLikeConfig(600, 2026));
  std::printf("microtask batch: %zu workers, %zu tasks, %zu eligible "
              "pairs\n\n",
              market.NumWorkers(), market.NumTasks(), market.NumEdges());

  // Quality-focused platform: alpha = 0.8 still leaves workers a fifth of
  // the objective, enough to keep participation attractive.
  const MbtaProblem problem{
      &market, {.alpha = 0.8, .kind = ObjectiveKind::kSubmodular}};

  struct Candidate {
    const char* label;
    Assignment assignment;
  };
  Candidate candidates[] = {
      {"mutual-benefit greedy", GreedySolver().Solve(problem)},
      {"random dispatch", RandomSolver(1).Solve(problem)},
  };

  const MajorityVote majority;
  const DawidSkene dawid_skene;

  for (const Candidate& c : candidates) {
    const AssignmentMetrics metrics =
        Evaluate(problem.MakeObjective(), c.assignment);
    std::printf("--- %s ---\n", c.label);
    std::printf("assigned pairs: %zu, tasks covered: %zu/%zu\n",
                metrics.num_assignments, metrics.tasks_covered,
                market.NumTasks());
    std::printf("requester benefit %.1f, worker benefit %.1f\n",
                metrics.requester_benefit, metrics.worker_benefit);

    double mv_acc = 0.0, ds_acc = 0.0;
    constexpr int kRuns = 5;
    for (int run = 0; run < kRuns; ++run) {
      const AnswerSet answers =
          SimulateAnswers(market, c.assignment, 500 + run);
      mv_acc += LabelAccuracy(answers, majority.Aggregate(answers));
      ds_acc += LabelAccuracy(answers, dawid_skene.Aggregate(answers));
    }
    std::printf("label accuracy: majority vote %.3f, dawid-skene %.3f "
                "(mean of %d runs)\n\n",
                mv_acc / kRuns, ds_acc / kRuns, kRuns);
  }

  std::printf("takeaway: the mutual-benefit-aware assignment routes "
              "reliable workers to tasks they fit, so the same crowd and "
              "the same budget yield strictly better labels.\n");
  return 0;
}
