/// Freelance marketplace scenario: an Upwork-like market with specialized
/// skills and dispersed wages. Sweeps the trade-off weight alpha to show
/// the platform operator's dial between requester surplus and worker
/// welfare, and reports fairness of the resulting income distribution.
///
///   $ ./build/examples/freelance_matching

#include <cstdio>

#include "core/greedy_solver.h"
#include "gen/market_generator.h"
#include "market/metrics.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace mbta;

  const LaborMarket market = GenerateMarket(UpworkLikeConfig(1200, 7));
  std::printf("freelance market: %zu workers, %zu jobs, %zu qualified "
              "applications\n\n",
              market.NumWorkers(), market.NumTasks(), market.NumEdges());

  Table table({"alpha", "hires", "requester surplus", "worker income",
               "jain fairness", "income gini"});
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const MbtaProblem problem{
        &market, {.alpha = alpha, .kind = ObjectiveKind::kSubmodular}};
    const Assignment assignment = GreedySolver().Solve(problem);
    const AssignmentMetrics metrics =
        Evaluate(problem.MakeObjective(), assignment);
    table.AddRow(
        {Table::Num(alpha),
         Table::Num(static_cast<std::int64_t>(metrics.num_assignments)),
         Table::Num(metrics.requester_benefit),
         Table::Num(metrics.worker_benefit),
         Table::Num(JainFairnessIndex(metrics.per_worker_benefit)),
         Table::Num(GiniCoefficient(metrics.per_worker_benefit))});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Show a few concrete hires at the balanced setting.
  const MbtaProblem balanced{
      &market, {.alpha = 0.5, .kind = ObjectiveKind::kSubmodular}};
  const Assignment assignment = GreedySolver().Solve(balanced);
  std::printf("sample hires at alpha=0.5 (first 8 of %zu):\n",
              assignment.size());
  std::size_t shown = 0;
  for (EdgeId e : assignment.edges) {
    if (shown++ >= 8) break;
    const Worker& w = market.worker(market.EdgeWorker(e));
    const Task& t = market.task(market.EdgeTask(e));
    std::printf("  worker %4u (reliability %.2f, rate %6.2f) -> job %3u "
                "(pays %6.2f, match quality %.2f)\n",
                w.id, w.reliability, w.unit_cost, t.id, t.payment,
                market.Quality(e));
  }
  return 0;
}
