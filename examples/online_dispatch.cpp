/// Online dispatch scenario: workers log on one at a time in random order
/// and must be given tasks immediately (the realistic platform setting).
/// Compares plain online greedy against the two-phase sample-then-assign
/// algorithm and against the offline upper reference, printing the
/// cumulative mutual benefit as the day progresses.
///
///   $ ./build/examples/online_dispatch

#include <cstdio>

#include "core/greedy_solver.h"
#include "core/online_solvers.h"
#include "gen/market_generator.h"
#include "market/metrics.h"

int main() {
  using namespace mbta;

  const LaborMarket market = GenerateMarket(ZipfConfig(800, 800, 99));
  const MbtaProblem problem{
      &market, {.alpha = 0.5, .kind = ObjectiveKind::kSubmodular}};
  const MutualBenefitObjective objective = problem.MakeObjective();

  const double offline = objective.Value(GreedySolver().Solve(problem));
  std::printf("market: %zu workers, %zu tasks; offline greedy MB = %.1f\n\n",
              market.NumWorkers(), market.NumTasks(), offline);

  const auto order = RandomArrivalOrder(market.NumWorkers(), 5);

  // Replay the arrival stream manually with an incremental state so we can
  // print progress checkpoints — this is exactly what OnlineGreedySolver
  // does internally.
  ObjectiveState state(&objective);
  std::size_t arrived = 0;
  std::printf("online greedy dispatch:\n");
  std::printf("  %8s  %10s  %8s\n", "arrivals", "MB so far", "vs offline");
  for (WorkerId w : order) {
    ++arrived;
    for (;;) {
      double best_gain = 0.0;
      EdgeId best_edge = kInvalidEdge;
      if (state.WorkerLoad(w) < market.worker(w).capacity) {
        for (const Incidence& inc : market.WorkerEdges(w)) {
          if (!state.CanAdd(inc.edge)) continue;
          const double gain = state.MarginalGain(inc.edge);
          if (gain > best_gain) {
            best_gain = gain;
            best_edge = inc.edge;
          }
        }
      }
      if (best_edge == kInvalidEdge) break;
      state.Add(best_edge);
    }
    if (arrived % (market.NumWorkers() / 8) == 0) {
      std::printf("  %8zu  %10.1f  %7.1f%%\n", arrived, state.value(),
                  100.0 * state.value() / offline);
    }
  }

  // And the two-phase algorithm end to end.
  std::printf("\nfinal results over the same arrival order:\n");
  const double online =
      objective.Value(OnlineGreedySolver().SolveWithOrder(problem, order));
  std::printf("  online-greedy    MB = %8.1f  (%.1f%% of offline)\n",
              online, 100.0 * online / offline);
  TwoPhaseOnlineSolver::Options opts;
  opts.sample_fraction = 0.15;
  const double two_phase = objective.Value(
      TwoPhaseOnlineSolver(1, opts).SolveWithOrder(problem, order));
  std::printf("  online-two-phase MB = %8.1f  (%.1f%% of offline, "
              "sample fraction %.2f)\n",
              two_phase, 100.0 * two_phase / offline,
              opts.sample_fraction);
  return 0;
}
