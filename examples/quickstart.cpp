/// Quickstart: build a tiny labor market by hand, solve the mutual-benefit
/// task assignment problem, and inspect the result.
///
///   $ ./build/examples/quickstart

#include <cstdio>

#include "core/greedy_solver.h"
#include "market/metrics.h"

int main() {
  using namespace mbta;

  // 1. Describe the market: two workers, three tasks.
  LaborMarketBuilder builder;
  builder.SetName("quickstart");

  Worker alice;
  alice.capacity = 2;         // will do up to two tasks
  alice.reliability = 0.95;   // excellent worker
  alice.unit_cost = 1.0;      // wants at least $1 per task
  builder.AddWorker(alice);

  Worker bob;
  bob.capacity = 1;
  bob.reliability = 0.65;
  bob.unit_cost = 0.2;
  builder.AddWorker(bob);

  Task label_images;
  label_images.capacity = 2;  // wants two redundant answers
  label_images.payment = 1.5;
  label_images.value = 5.0;
  builder.AddTask(label_images);

  Task transcribe_audio;
  transcribe_audio.capacity = 1;
  transcribe_audio.payment = 2.0;
  transcribe_audio.value = 8.0;
  builder.AddTask(transcribe_audio);

  Task survey;
  survey.capacity = 1;
  survey.payment = 0.5;
  survey.value = 1.0;
  builder.AddTask(survey);

  // 2. Connect every eligible worker/task pair under the default edge
  //    model (worker must not lose money; skills are unconstrained here).
  builder.ConnectEligiblePairs(EdgeModelParams{});
  const LaborMarket market = builder.Build();
  std::printf("market: %zu workers, %zu tasks, %zu eligible pairs\n",
              market.NumWorkers(), market.NumTasks(), market.NumEdges());

  // 3. Solve: maximize 0.5·requester benefit + 0.5·worker benefit.
  const MbtaProblem problem{
      &market, {.alpha = 0.5, .kind = ObjectiveKind::kSubmodular}};
  const Assignment assignment = GreedySolver().Solve(problem);

  // 4. Inspect.
  const char* worker_names[] = {"alice", "bob"};
  const char* task_names[] = {"label_images", "transcribe_audio", "survey"};
  std::printf("\nassignment (%zu pairs):\n", assignment.size());
  for (EdgeId e : assignment.edges) {
    std::printf("  %-6s -> %-17s quality=%.2f  worker benefit=%.2f\n",
                worker_names[market.EdgeWorker(e)],
                task_names[market.EdgeTask(e)], market.Quality(e),
                market.WorkerBenefit(e));
  }

  const AssignmentMetrics metrics =
      Evaluate(problem.MakeObjective(), assignment);
  std::printf("\nmutual benefit    = %.3f\n", metrics.mutual_benefit);
  std::printf("requester benefit = %.3f\n", metrics.requester_benefit);
  std::printf("worker benefit    = %.3f\n", metrics.worker_benefit);
  return 0;
}
