/// The full platform loop: a crowdsourcing operator runs day after day —
/// post tasks, assign under current beliefs, collect answers, infer
/// truth, update worker reputations — and watches assignment quality
/// climb as the platform learns who its good workers are.
///
///   $ ./build/examples/platform_loop

#include <cstdio>

#include "platform/platform.h"

int main() {
  using namespace mbta;

  PlatformConfig config;
  config.market_template = ContendedLabelingConfig(400, 7);
  config.alpha = 0.9;
  config.rounds = 10;
  config.seed = 7;

  std::printf("running %d rounds over a %zu-worker population "
              "(%zu tasks/round, redundancy 3)\n\n",
              config.rounds, config.market_template.num_workers,
              config.market_template.num_tasks);

  const PlatformResult oracle =
      RunPlatform(config, KnowledgeModel::kOracle);
  const PlatformResult learned =
      RunPlatform(config, KnowledgeModel::kLearned);
  const PlatformResult fixed = RunPlatform(config, KnowledgeModel::kStatic);

  std::printf("%5s  %12s  %12s  %12s  %10s  %9s\n", "round", "oracle MB",
              "learned MB", "static MB", "rep. RMSE", "label acc");
  for (int r = 0; r < config.rounds; ++r) {
    std::printf("%5d  %12.1f  %12.1f  %12.1f  %10.4f  %9.3f\n", r,
                oracle.rounds[r].true_mutual_benefit,
                learned.rounds[r].true_mutual_benefit,
                fixed.rounds[r].true_mutual_benefit,
                learned.rounds[r].reputation_rmse,
                learned.rounds[r].label_accuracy);
  }

  double oracle_total = 0.0, learned_total = 0.0, static_total = 0.0;
  for (int r = 0; r < config.rounds; ++r) {
    oracle_total += oracle.rounds[r].true_mutual_benefit;
    learned_total += learned.rounds[r].true_mutual_benefit;
    static_total += fixed.rounds[r].true_mutual_benefit;
  }
  std::printf("\ncumulative: oracle %.0f, learned %.0f (%.1f%% of "
              "oracle), static %.0f (%.1f%%)\n",
              oracle_total, learned_total,
              100.0 * learned_total / oracle_total, static_total,
              100.0 * static_total / oracle_total);
  const double gap = oracle_total - static_total;
  const double recovered = learned_total - static_total;
  std::printf("takeaway: reputation learning recovered %.0f%% of the "
              "oracle-vs-static benefit gap (and cut reputation RMSE "
              "from %.3f to %.3f); redundancy-3 tasks cap how much the "
              "benefit itself can move, but the accuracy of knowing WHO "
              "to hire keeps compounding.\n",
              gap > 0 ? 100.0 * recovered / gap : 0.0,
              learned.rounds.front().reputation_rmse,
              learned.rounds.back().reputation_rmse);
  return 0;
}
