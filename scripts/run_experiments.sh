#!/usr/bin/env bash
# Regenerates every table and figure of EXPERIMENTS.md into results/.
# Usage: scripts/run_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "${BUILD_DIR}/bench" ]; then
  echo "error: ${BUILD_DIR}/bench not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -G Ninja && cmake --build ${BUILD_DIR}" >&2
  exit 1
fi

mkdir -p "${RESULTS_DIR}"
for bench in "${BUILD_DIR}"/bench/*; do
  [ -f "${bench}" ] && [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  echo "running ${name} ..."
  "${bench}" > "${RESULTS_DIR}/${name}.txt"
done
echo "done: $(ls "${RESULTS_DIR}" | wc -l) result files in ${RESULTS_DIR}/"
