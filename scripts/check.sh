#!/usr/bin/env bash
# Full correctness matrix: the tier-1 suite under the plain build, then
# under ASan and UBSan instrumentation (-DMBTA_SANITIZE presets), then
# the obs tests under TSan with the thread-safe registries
# (-DMBTA_SANITIZE=thread -DMBTA_OBS_THREADSAFE=ON).
#
# Usage: scripts/check.sh [--fast] [--skip-unsupported] [jobs]
#   --fast               plain build runs only `ctest -L unit` (skips the
#                        differential harness); sanitizer builds always
#                        run everything.
#   --skip-unsupported   downgrade "this compiler cannot build sanitizer
#                        X" from an error to a warning and skip that leg.
#   jobs                 parallelism for build and ctest (default: nproc).
#
# Build trees land in build/, build-asan/, build-ubsan/, build-tsan/
# (all gitignored) and are reused across runs, so incremental
# invocations are cheap.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
SKIP_UNSUPPORTED=0
while [ $# -gt 0 ]; do
  case "$1" in
    --fast) FAST=1; shift ;;
    --skip-unsupported) SKIP_UNSUPPORTED=1; shift ;;
    *) break ;;
  esac
done
JOBS="${1:-$(nproc)}"

CXX_BIN="${CXX:-c++}"

# Probe the compiler once per sanitizer instead of letting an
# unsupported combo surface as an opaque CMake/link error mid-matrix.
sanitizer_supported() {
  local flag="$1"
  echo 'int main(){return 0;}' | \
    "${CXX_BIN}" -x c++ "-fsanitize=${flag}" -o /dev/null - \
      >/dev/null 2>&1
}

require_sanitizer() {
  local flag="$1"
  if sanitizer_supported "${flag}"; then
    return 0
  fi
  if [ "${SKIP_UNSUPPORTED}" = "1" ]; then
    echo "check.sh: WARNING: ${CXX_BIN} cannot build -fsanitize=${flag};" \
         "skipping that leg (--skip-unsupported)" >&2
    return 1
  fi
  echo "check.sh: ERROR: ${CXX_BIN} cannot compile with" \
       "-fsanitize=${flag}." >&2
  echo "  Install a toolchain with ${flag} sanitizer runtime support," \
       "or re-run with --skip-unsupported to omit this leg." >&2
  exit 2
}

run_suite() {
  local dir="$1" sanitize="$2" label_args="$3"
  echo "=== ${dir} (MBTA_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . -DMBTA_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  # shellcheck disable=SC2086  # label_args is intentionally word-split
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" ${label_args})
}

if [ "${FAST}" = "1" ]; then
  run_suite build "" "-L unit"
else
  run_suite build "" ""
fi
if require_sanitizer address; then
  run_suite build-asan address ""
fi
if require_sanitizer undefined; then
  run_suite build-ubsan undefined ""
fi

# TSan leg: the concurrent obs registries only. Building the binaries
# directly keeps this leg minutes-cheap while still racing every locked
# path (tests/obs_threads_test.cc hammers one registry from N threads).
if require_sanitizer thread; then
  echo "=== build-tsan (MBTA_SANITIZE='thread' MBTA_OBS_THREADSAFE=ON) ==="
  cmake -B build-tsan -S . -DMBTA_SANITIZE=thread \
        -DMBTA_OBS_THREADSAFE=ON >/dev/null
  cmake --build build-tsan -j "${JOBS}" \
        --target obs_threads_test obs_test json_writer_test
  build-tsan/tests/obs_threads_test
  build-tsan/tests/obs_test
  build-tsan/tests/json_writer_test
fi

echo "check.sh: all requested suites green"
