#!/usr/bin/env bash
# Full correctness matrix: the tier-1 suite under the plain build, then
# under ASan and UBSan instrumentation (-DMBTA_SANITIZE presets).
#
# Usage: scripts/check.sh [--fast] [jobs]
#   --fast   plain build runs only `ctest -L unit` (skips the differential
#            harness); sanitizer builds always run everything.
#   jobs     parallelism for build and ctest (default: nproc).
#
# Build trees land in build/, build-asan/, build-ubsan/ (all gitignored)
# and are reused across runs, so incremental invocations are cheap.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [ "${1:-}" = "--fast" ]; then
  FAST=1
  shift
fi
JOBS="${1:-$(nproc)}"

run_suite() {
  local dir="$1" sanitize="$2" label_args="$3"
  echo "=== ${dir} (MBTA_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . -DMBTA_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  # shellcheck disable=SC2086  # label_args is intentionally word-split
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" ${label_args})
}

if [ "${FAST}" = "1" ]; then
  run_suite build "" "-L unit"
else
  run_suite build "" ""
fi
run_suite build-asan address ""
run_suite build-ubsan undefined ""

echo "check.sh: all suites green (plain, asan, ubsan)"
