#!/usr/bin/env bash
# Full correctness matrix: the tier-1 suite under the plain build, then
# under ASan and UBSan instrumentation (-DMBTA_SANITIZE presets), then
# the obs tests AND the robustness + service suites (deadline /
# fault-injection / fallback / cancellation plus WAL / snapshot / crash
# recovery, `ctest -L 'robustness|service'`) under TSan with the
# thread-safe registries (-DMBTA_SANITIZE=thread -DMBTA_OBS_THREADSAFE=ON).
# The TSan leg is what exercises cancellation from a second thread with
# both threads writing shared counters, plus the parallel solve path:
# ThreadPool, the parallel Hopcroft-Karp BFS, and a slice of the
# cross-thread-count determinism sweep. A CLI smoke step checks the
# mbta_cli exit-code taxonomy (0 ok / 1 usage / 2 bad input / 3 degraded)
# end-to-end against the plain build, a bench gate diffs a fresh
# smoke-suite run's counters against the committed BENCH_ci.json, and a
# trace gate asserts traces are sequence-identical across runs and
# across thread counts (mbta_trace --diff).
#
# Usage: scripts/check.sh [--fast] [--skip-unsupported] [jobs]
#   --fast               plain build runs only `ctest -L
#                        'unit|robustness|service'` (skips the
#                        differential harness); sanitizer
#                        builds always run everything.
#   --skip-unsupported   downgrade "this compiler cannot build sanitizer
#                        X" from an error to a warning and skip that leg.
#   jobs                 parallelism for build and ctest (default: nproc).
#
# Build trees land in build/, build-asan/, build-ubsan/, build-tsan/
# (all gitignored) and are reused across runs, so incremental
# invocations are cheap.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
SKIP_UNSUPPORTED=0
while [ $# -gt 0 ]; do
  case "$1" in
    --fast) FAST=1; shift ;;
    --skip-unsupported) SKIP_UNSUPPORTED=1; shift ;;
    *) break ;;
  esac
done
JOBS="${1:-$(nproc)}"

CXX_BIN="${CXX:-c++}"

# Probe the compiler once per sanitizer instead of letting an
# unsupported combo surface as an opaque CMake/link error mid-matrix.
sanitizer_supported() {
  local flag="$1"
  echo 'int main(){return 0;}' | \
    "${CXX_BIN}" -x c++ "-fsanitize=${flag}" -o /dev/null - \
      >/dev/null 2>&1
}

require_sanitizer() {
  local flag="$1"
  if sanitizer_supported "${flag}"; then
    return 0
  fi
  if [ "${SKIP_UNSUPPORTED}" = "1" ]; then
    echo "check.sh: WARNING: ${CXX_BIN} cannot build -fsanitize=${flag};" \
         "skipping that leg (--skip-unsupported)" >&2
    return 1
  fi
  echo "check.sh: ERROR: ${CXX_BIN} cannot compile with" \
       "-fsanitize=${flag}." >&2
  echo "  Install a toolchain with ${flag} sanitizer runtime support," \
       "or re-run with --skip-unsupported to omit this leg." >&2
  exit 2
}

run_suite() {
  local dir="$1" sanitize="$2" label_args="$3"
  echo "=== ${dir} (MBTA_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . -DMBTA_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  # shellcheck disable=SC2086  # label_args is intentionally word-split
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}" ${label_args})
}

# Runs a command, swallowing its output, and asserts its exit status.
# The mbta_cli exit codes are a documented contract (see CONTRIBUTING.md
# "Robustness"); this catches a refactor that silently collapses them.
expect_exit() {
  local want="$1"; shift
  local got=0
  "$@" >/dev/null 2>&1 || got=$?
  if [ "${got}" -ne "${want}" ]; then
    echo "check.sh: ERROR: '$*' exited ${got}, want ${want}" >&2
    exit 1
  fi
}

cli_smoke() {
  echo "=== mbta_cli exit-code smoke (build/) ==="
  cmake --build build -j "${JOBS}" --target mbta_cli
  local cli=build/tools/mbta_cli
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  # 0: a normal generate + solve round trip succeeds.
  expect_exit 0 "${cli}" generate --dataset uniform --workers 30 \
      --tasks 30 --seed 7 --out "${tmp}/m.market"
  expect_exit 0 "${cli}" solve --market "${tmp}/m.market" \
      --solver greedy --out "${tmp}/a.assignment"
  # 1: usage errors — unknown command, unknown solver.
  expect_exit 1 "${cli}" frobnicate
  expect_exit 1 "${cli}" solve --market "${tmp}/m.market" \
      --solver no-such-solver --out "${tmp}/x.assignment"
  # 2: bad input — a corrupt market file parses to a clean error.
  printf 'mbta-market v1\nname x\nworkers nan\n' > "${tmp}/bad.market"
  expect_exit 2 "${cli}" stats --market "${tmp}/bad.market"
  # 3: degraded — a zero work budget still writes a best-effort answer.
  expect_exit 3 "${cli}" solve --market "${tmp}/m.market" \
      --solver greedy --work-budget 0 --out "${tmp}/d.assignment"
  # The degraded run must still have produced a loadable assignment.
  expect_exit 0 "${cli}" evaluate --market "${tmp}/m.market" \
      --assignment "${tmp}/d.assignment"

  # The serve/replay pair follows the same taxonomy. A scripted serve
  # writes a WAL; replaying that WAL must recover (0) and do so
  # deterministically (two --dump-state replays are byte-identical); a
  # WAL with a foreign magic is bad input (2); a zero work budget runs
  # the epochs best-effort and reports degraded (3).
  {
    printf 'add-worker 1 2 0.1 1.0 0.9\n'
    printf 'add-worker 2 1 0.2 1.0 0.8\n'
    printf 'add-task 100 1 1.5 2.0 0.2 0\n'
    printf 'add-task 101 2 1.0 1.0 0.1 0\n'
    printf 'epoch\n'
    printf 'task-payment 100 2.5\n'
    printf 'rm-worker 2\n'
    printf 'epoch\n'
  } > "${tmp}/serve.script"
  expect_exit 0 "${cli}" serve --script "${tmp}/serve.script" \
      --wal "${tmp}/serve.wal" --snapshot-every 1
  expect_exit 0 "${cli}" replay --wal "${tmp}/serve.wal"
  "${cli}" replay --wal "${tmp}/serve.wal" --dump-state > "${tmp}/r1.txt"
  "${cli}" replay --wal "${tmp}/serve.wal" --dump-state > "${tmp}/r2.txt"
  diff "${tmp}/r1.txt" "${tmp}/r2.txt"
  printf 'NOTAWAL!' > "${tmp}/foreign.wal"
  expect_exit 2 "${cli}" replay --wal "${tmp}/foreign.wal"
  expect_exit 3 "${cli}" serve --script "${tmp}/serve.script" \
      --work-budget 0
  echo "check.sh: mbta_cli exit codes 0/1/2/3 verified (solve + serve)"
}

# Diffs a fresh smoke-suite run against the committed BENCH_ci.json
# baseline. Counters are machine-independent and compared exactly — any
# drift means the build does different work than the committed record
# (e.g. a solver's batch/commit sequence changed without regenerating
# the baseline via scripts/bench_smoke.sh BENCH_ci.json). Wall times in
# the committed file were measured on whoever committed it, so the
# --min-ms floor is set above every row to keep this leg counters-only;
# same-machine wall-time regressions are caught by the two-run CI gate.
bench_gate() {
  echo "=== bench gate: counters vs committed BENCH_ci.json (build/) ==="
  cmake --build build -j "${JOBS}" --target smoke_suite bench_compare
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  build/bench/smoke_suite --json "${tmp}/smoke.json" >/dev/null
  build/tools/bench_compare BENCH_ci.json "${tmp}/smoke.json" \
      --threshold 0.5 --min-ms 1000000
  echo "check.sh: smoke counters match committed BENCH_ci.json"
}

# The full mbta_lint pass stack gated against the committed waiver
# ledger: any violation or any waiver added/removed without regenerating
# LINT_LEDGER.json fails the matrix (same gate CI's lint job runs;
# clang-tidy is lint.sh's business, not repeated here).
lint_gate() {
  echo "=== lint gate: mbta_lint + LINT_LEDGER.json (build/) ==="
  cmake --build build -j "${JOBS}" --target mbta_lint
  build/tools/mbta_lint --ledger LINT_LEDGER.json src tools bench tests
  echo "check.sh: lint clean, waiver ledger in sync"
}

# Traces are diffed as normalized event sequences (timestamps and
# durations stripped), so two runs of the same build must produce
# byte-identical sequences — and by the determinism contract the same
# holds across thread counts, modulo the `pool` category: pool/slice
# spans only exist when workers actually run, so the cross-thread-count
# diff ignores that category (see CONTRIBUTING.md "Tracing").
trace_gate() {
  echo "=== trace gate: sequence-identical traces (build/) ==="
  cmake --build build -j "${JOBS}" --target smoke_suite mbta_trace mbta_cli
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  build/bench/smoke_suite --json "${tmp}/a.json" \
      --trace "${tmp}/a-trace.json" >/dev/null
  build/bench/smoke_suite --json "${tmp}/b.json" \
      --trace "${tmp}/b-trace.json" >/dev/null
  build/tools/mbta_trace --diff "${tmp}/a-trace.json" "${tmp}/b-trace.json"
  local cli=build/tools/mbta_cli
  "${cli}" generate --dataset mturk --workers 250 --seed 7 \
      --out "${tmp}/gate.market" >/dev/null
  "${cli}" solve --market "${tmp}/gate.market" \
      --solver parallel-greedy-plain --threads 1 \
      --trace "${tmp}/t1.json" --out "${tmp}/t1.assignment" >/dev/null
  "${cli}" solve --market "${tmp}/gate.market" \
      --solver parallel-greedy-plain --threads 8 \
      --trace "${tmp}/t8.json" --out "${tmp}/t8.assignment" >/dev/null
  build/tools/mbta_trace --diff "${tmp}/t1.json" "${tmp}/t8.json" \
      --ignore-cat pool
  echo "check.sh: traces deterministic across runs and thread counts"
}

if [ "${FAST}" = "1" ]; then
  run_suite build "" "-L unit|robustness|service"
else
  run_suite build "" ""
fi
cli_smoke
lint_gate
bench_gate
trace_gate
# The sanitizer legs run the whole registered suite, which includes the
# `robustness` and `service` labels — so the deadline/fault-injection/
# fallback tests and the WAL/snapshot/crash-recovery suite get an ASan
# and UBSan pass here, not just the plain build above.
if require_sanitizer address; then
  run_suite build-asan address ""
fi
if require_sanitizer undefined; then
  run_suite build-ubsan undefined ""
fi

# TSan leg: the concurrent obs registries plus the robustness suite.
# MBTA_OBS_THREADSAFE=ON makes the counter registries lockable, which the
# cancellation tests rely on to write counters from a watchdog thread
# while the solver thread runs — TSan then proves the whole
# budget/cancel/fallback path race-free. Building targets directly keeps
# this leg minutes-cheap; `ctest -L robustness` only matches tests whose
# binaries were built (unbuilt targets surface as unlabeled NOT_BUILT
# placeholders and are skipped by the label filter).
if require_sanitizer thread; then
  echo "=== build-tsan (MBTA_SANITIZE='thread' MBTA_OBS_THREADSAFE=ON) ==="
  cmake -B build-tsan -S . -DMBTA_SANITIZE=thread \
        -DMBTA_OBS_THREADSAFE=ON >/dev/null
  cmake --build build-tsan -j "${JOBS}" \
        --target obs_threads_test obs_test json_writer_test \
                 histogram_test trace_test \
                 deadline_test fault_injection_test fallback_solver_test \
                 cancellation_test thread_pool_test hopcroft_karp_test \
                 differential_test \
                 wal_test snapshot_test market_service_test \
                 service_recovery_test wal_fuzz_test \
                 service_differential_test
  build-tsan/tests/obs_threads_test
  build-tsan/tests/obs_test
  build-tsan/tests/json_writer_test
  # The tracer's internal mutexes are always-on (unlike the registries),
  # so TSan here proves the multi-track span path race-free: trace_test's
  # pool test drives four worker threads through RegisterThread and
  # concurrent slice spans.
  build-tsan/tests/histogram_test
  build-tsan/tests/trace_test
  # The parallel-solve path under TSan: the pool's handoff protocol, the
  # parallel BFS layer expansion, and a slice of the cross-thread-count
  # determinism sweep (instances 10-19 — the full 100 would take minutes
  # under TSan; any data race shows up within a handful of instances).
  build-tsan/tests/thread_pool_test
  build-tsan/tests/hopcroft_karp_test
  build-tsan/tests/differential_test \
      --gtest_filter='*ParallelDeterminismTest*/1?'
  # The service suite rides along: single-threaded today, but the WAL /
  # snapshot / crash-recovery paths share the obs registries with the
  # instrumented solvers, so running them against the lockable registries
  # keeps the durability path honest as parallel epochs arrive.
  (cd build-tsan && ctest --output-on-failure -j "${JOBS}" \
      -L 'robustness|service')
fi

echo "check.sh: all requested suites green"
