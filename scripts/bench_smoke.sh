#!/usr/bin/env bash
# Runs the pinned smoke benchmark suite and writes a structured JSON
# record for the perf-regression gate.
#
# Usage: scripts/bench_smoke.sh [output.json] [jobs] [trace.json]
#   output.json  destination record (default: BENCH_smoke.json)
#   jobs         build parallelism (default: nproc)
#   trace.json   also record the run as a Chrome trace-event file; two
#                such traces from the same build must be
#                sequence-identical (mbta_trace --diff), which is the
#                CI trace-determinism gate
#
# Typical gate (two builds or two checkouts):
#   scripts/bench_smoke.sh base.json       # on the baseline
#   scripts/bench_smoke.sh cand.json       # on the candidate
#   build/tools/bench_compare base.json cand.json --threshold 0.5 --min-ms 20
#
# Counters are compared exactly on every row; --min-ms restricts the
# wall-time check to rows slow enough to measure (single-digit-ms rows
# jitter well beyond 50% under load even best-of-3).
#
# The committed baseline lives at BENCH_ci.json (diffed counters-only by
# scripts/check.sh and CI). Regenerate it after any intentional change
# to solver work counts or the smoke line-up:
#   scripts/bench_smoke.sh BENCH_ci.json
#
# The smoke suite itself also enforces instrumentation determinism: it
# exits nonzero if any solver returns a different assignment when a
# SolveStats sink is attached.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_smoke.json}"
JOBS="${2:-$(nproc)}"
TRACE="${3:-}"

cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}" --target smoke_suite bench_compare mbta_trace
if [ -n "${TRACE}" ]; then
  build/bench/smoke_suite --json "${OUT}" --trace "${TRACE}"
  echo "bench_smoke.sh: wrote ${OUT} and ${TRACE}"
else
  build/bench/smoke_suite --json "${OUT}"
  echo "bench_smoke.sh: wrote ${OUT}"
fi
