#!/usr/bin/env bash
# Static-analysis entry point: runs the full mbta_lint pass stack — the
# per-file rules R1–R9 plus the whole-program determinism-taint, lock-
# discipline, and call-graph passes, gated against the committed waiver
# ledger (see CONTRIBUTING.md "Static analysis") — and clang-tidy over
# the library .cc files when it is installed (compile_commands.json is
# exported by the top-level CMakeLists). When clang-tidy is present it
# is mandatory: any diagnostic fails the script, same as in CI.
#
# Usage: scripts/lint.sh [build-dir] [jobs]
#   build-dir  CMake build tree to (re)use (default: build)
#   jobs       build parallelism (default: nproc)
#
# Exit nonzero on any mbta_lint violation, waiver-ledger drift, or
# clang-tidy diagnostic.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JOBS="${2:-$(nproc)}"

cmake -B "${BUILD}" -S . >/dev/null
cmake --build "${BUILD}" -j "${JOBS}" --target mbta_lint

echo "=== mbta_lint ==="
"${BUILD}/tools/mbta_lint" --ledger LINT_LEDGER.json src tools bench tests

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy ==="
  if [ ! -f "${BUILD}/compile_commands.json" ]; then
    echo "lint.sh: ${BUILD}/compile_commands.json missing; re-run cmake" >&2
    exit 2
  fi
  # Library sources only: benches and tests inherit the important checks
  # through the headers they include (HeaderFilterRegex covers src/).
  mapfile -t SOURCES < <(find src -name '*.cc' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${BUILD}" -quiet -j "${JOBS}" "${SOURCES[@]}"
  else
    clang-tidy -p "${BUILD}" --quiet "${SOURCES[@]}"
  fi
else
  echo "lint.sh: clang-tidy not installed; skipped (mbta_lint ran)" >&2
fi

echo "lint.sh: clean"
