file(REMOVE_RECURSE
  "CMakeFiles/mbta_market.dir/assignment.cc.o"
  "CMakeFiles/mbta_market.dir/assignment.cc.o.d"
  "CMakeFiles/mbta_market.dir/labor_market.cc.o"
  "CMakeFiles/mbta_market.dir/labor_market.cc.o.d"
  "CMakeFiles/mbta_market.dir/metrics.cc.o"
  "CMakeFiles/mbta_market.dir/metrics.cc.o.d"
  "CMakeFiles/mbta_market.dir/objective.cc.o"
  "CMakeFiles/mbta_market.dir/objective.cc.o.d"
  "CMakeFiles/mbta_market.dir/types.cc.o"
  "CMakeFiles/mbta_market.dir/types.cc.o.d"
  "libmbta_market.a"
  "libmbta_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
