file(REMOVE_RECURSE
  "libmbta_market.a"
)
