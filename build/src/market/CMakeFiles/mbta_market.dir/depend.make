# Empty dependencies file for mbta_market.
# This may be replaced when dependencies are built.
