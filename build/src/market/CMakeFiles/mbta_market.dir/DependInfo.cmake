
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/assignment.cc" "src/market/CMakeFiles/mbta_market.dir/assignment.cc.o" "gcc" "src/market/CMakeFiles/mbta_market.dir/assignment.cc.o.d"
  "/root/repo/src/market/labor_market.cc" "src/market/CMakeFiles/mbta_market.dir/labor_market.cc.o" "gcc" "src/market/CMakeFiles/mbta_market.dir/labor_market.cc.o.d"
  "/root/repo/src/market/metrics.cc" "src/market/CMakeFiles/mbta_market.dir/metrics.cc.o" "gcc" "src/market/CMakeFiles/mbta_market.dir/metrics.cc.o.d"
  "/root/repo/src/market/objective.cc" "src/market/CMakeFiles/mbta_market.dir/objective.cc.o" "gcc" "src/market/CMakeFiles/mbta_market.dir/objective.cc.o.d"
  "/root/repo/src/market/types.cc" "src/market/CMakeFiles/mbta_market.dir/types.cc.o" "gcc" "src/market/CMakeFiles/mbta_market.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mbta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
