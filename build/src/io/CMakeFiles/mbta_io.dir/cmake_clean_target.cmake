file(REMOVE_RECURSE
  "libmbta_io.a"
)
