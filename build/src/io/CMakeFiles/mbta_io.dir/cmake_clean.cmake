file(REMOVE_RECURSE
  "CMakeFiles/mbta_io.dir/market_io.cc.o"
  "CMakeFiles/mbta_io.dir/market_io.cc.o.d"
  "libmbta_io.a"
  "libmbta_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
