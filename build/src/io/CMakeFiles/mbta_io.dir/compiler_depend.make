# Empty compiler generated dependencies file for mbta_io.
# This may be replaced when dependencies are built.
