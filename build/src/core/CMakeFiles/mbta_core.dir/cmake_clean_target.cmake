file(REMOVE_RECURSE
  "libmbta_core.a"
)
