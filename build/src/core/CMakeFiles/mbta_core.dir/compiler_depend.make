# Empty compiler generated dependencies file for mbta_core.
# This may be replaced when dependencies are built.
