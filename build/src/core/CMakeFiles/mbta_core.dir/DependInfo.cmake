
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_solvers.cc" "src/core/CMakeFiles/mbta_core.dir/baseline_solvers.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/baseline_solvers.cc.o.d"
  "/root/repo/src/core/brute_force_solver.cc" "src/core/CMakeFiles/mbta_core.dir/brute_force_solver.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/brute_force_solver.cc.o.d"
  "/root/repo/src/core/budget.cc" "src/core/CMakeFiles/mbta_core.dir/budget.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/budget.cc.o.d"
  "/root/repo/src/core/budgeted_greedy_solver.cc" "src/core/CMakeFiles/mbta_core.dir/budgeted_greedy_solver.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/budgeted_greedy_solver.cc.o.d"
  "/root/repo/src/core/exact_flow_solver.cc" "src/core/CMakeFiles/mbta_core.dir/exact_flow_solver.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/exact_flow_solver.cc.o.d"
  "/root/repo/src/core/greedy_solver.cc" "src/core/CMakeFiles/mbta_core.dir/greedy_solver.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/greedy_solver.cc.o.d"
  "/root/repo/src/core/local_search_solver.cc" "src/core/CMakeFiles/mbta_core.dir/local_search_solver.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/local_search_solver.cc.o.d"
  "/root/repo/src/core/online_solvers.cc" "src/core/CMakeFiles/mbta_core.dir/online_solvers.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/online_solvers.cc.o.d"
  "/root/repo/src/core/pareto.cc" "src/core/CMakeFiles/mbta_core.dir/pareto.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/pareto.cc.o.d"
  "/root/repo/src/core/recommend.cc" "src/core/CMakeFiles/mbta_core.dir/recommend.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/recommend.cc.o.d"
  "/root/repo/src/core/repair.cc" "src/core/CMakeFiles/mbta_core.dir/repair.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/repair.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/core/CMakeFiles/mbta_core.dir/solver.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/solver.cc.o.d"
  "/root/repo/src/core/stable_matching_solver.cc" "src/core/CMakeFiles/mbta_core.dir/stable_matching_solver.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/stable_matching_solver.cc.o.d"
  "/root/repo/src/core/threshold_solver.cc" "src/core/CMakeFiles/mbta_core.dir/threshold_solver.cc.o" "gcc" "src/core/CMakeFiles/mbta_core.dir/threshold_solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/mbta_market.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mbta_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbta_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
