file(REMOVE_RECURSE
  "CMakeFiles/mbta_core.dir/baseline_solvers.cc.o"
  "CMakeFiles/mbta_core.dir/baseline_solvers.cc.o.d"
  "CMakeFiles/mbta_core.dir/brute_force_solver.cc.o"
  "CMakeFiles/mbta_core.dir/brute_force_solver.cc.o.d"
  "CMakeFiles/mbta_core.dir/budget.cc.o"
  "CMakeFiles/mbta_core.dir/budget.cc.o.d"
  "CMakeFiles/mbta_core.dir/budgeted_greedy_solver.cc.o"
  "CMakeFiles/mbta_core.dir/budgeted_greedy_solver.cc.o.d"
  "CMakeFiles/mbta_core.dir/exact_flow_solver.cc.o"
  "CMakeFiles/mbta_core.dir/exact_flow_solver.cc.o.d"
  "CMakeFiles/mbta_core.dir/greedy_solver.cc.o"
  "CMakeFiles/mbta_core.dir/greedy_solver.cc.o.d"
  "CMakeFiles/mbta_core.dir/local_search_solver.cc.o"
  "CMakeFiles/mbta_core.dir/local_search_solver.cc.o.d"
  "CMakeFiles/mbta_core.dir/online_solvers.cc.o"
  "CMakeFiles/mbta_core.dir/online_solvers.cc.o.d"
  "CMakeFiles/mbta_core.dir/pareto.cc.o"
  "CMakeFiles/mbta_core.dir/pareto.cc.o.d"
  "CMakeFiles/mbta_core.dir/recommend.cc.o"
  "CMakeFiles/mbta_core.dir/recommend.cc.o.d"
  "CMakeFiles/mbta_core.dir/repair.cc.o"
  "CMakeFiles/mbta_core.dir/repair.cc.o.d"
  "CMakeFiles/mbta_core.dir/solver.cc.o"
  "CMakeFiles/mbta_core.dir/solver.cc.o.d"
  "CMakeFiles/mbta_core.dir/stable_matching_solver.cc.o"
  "CMakeFiles/mbta_core.dir/stable_matching_solver.cc.o.d"
  "CMakeFiles/mbta_core.dir/threshold_solver.cc.o"
  "CMakeFiles/mbta_core.dir/threshold_solver.cc.o.d"
  "libmbta_core.a"
  "libmbta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
