file(REMOVE_RECURSE
  "CMakeFiles/mbta_platform.dir/platform.cc.o"
  "CMakeFiles/mbta_platform.dir/platform.cc.o.d"
  "CMakeFiles/mbta_platform.dir/reputation.cc.o"
  "CMakeFiles/mbta_platform.dir/reputation.cc.o.d"
  "libmbta_platform.a"
  "libmbta_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
