# Empty compiler generated dependencies file for mbta_platform.
# This may be replaced when dependencies are built.
