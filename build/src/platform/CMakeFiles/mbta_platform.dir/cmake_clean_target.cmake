file(REMOVE_RECURSE
  "libmbta_platform.a"
)
