file(REMOVE_RECURSE
  "libmbta_util.a"
)
