file(REMOVE_RECURSE
  "CMakeFiles/mbta_util.dir/distribution.cc.o"
  "CMakeFiles/mbta_util.dir/distribution.cc.o.d"
  "CMakeFiles/mbta_util.dir/rng.cc.o"
  "CMakeFiles/mbta_util.dir/rng.cc.o.d"
  "CMakeFiles/mbta_util.dir/stats.cc.o"
  "CMakeFiles/mbta_util.dir/stats.cc.o.d"
  "CMakeFiles/mbta_util.dir/table.cc.o"
  "CMakeFiles/mbta_util.dir/table.cc.o.d"
  "libmbta_util.a"
  "libmbta_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
