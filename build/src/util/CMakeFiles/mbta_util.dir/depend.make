# Empty dependencies file for mbta_util.
# This may be replaced when dependencies are built.
