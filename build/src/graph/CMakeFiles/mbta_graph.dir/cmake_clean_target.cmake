file(REMOVE_RECURSE
  "libmbta_graph.a"
)
