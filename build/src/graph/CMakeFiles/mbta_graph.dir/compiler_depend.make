# Empty compiler generated dependencies file for mbta_graph.
# This may be replaced when dependencies are built.
