file(REMOVE_RECURSE
  "CMakeFiles/mbta_graph.dir/bipartite_graph.cc.o"
  "CMakeFiles/mbta_graph.dir/bipartite_graph.cc.o.d"
  "libmbta_graph.a"
  "libmbta_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
