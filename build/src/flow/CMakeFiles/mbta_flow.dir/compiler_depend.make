# Empty compiler generated dependencies file for mbta_flow.
# This may be replaced when dependencies are built.
