file(REMOVE_RECURSE
  "CMakeFiles/mbta_flow.dir/hopcroft_karp.cc.o"
  "CMakeFiles/mbta_flow.dir/hopcroft_karp.cc.o.d"
  "CMakeFiles/mbta_flow.dir/hungarian.cc.o"
  "CMakeFiles/mbta_flow.dir/hungarian.cc.o.d"
  "CMakeFiles/mbta_flow.dir/max_flow.cc.o"
  "CMakeFiles/mbta_flow.dir/max_flow.cc.o.d"
  "CMakeFiles/mbta_flow.dir/min_cost_flow.cc.o"
  "CMakeFiles/mbta_flow.dir/min_cost_flow.cc.o.d"
  "libmbta_flow.a"
  "libmbta_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
