file(REMOVE_RECURSE
  "libmbta_flow.a"
)
