file(REMOVE_RECURSE
  "libmbta_sim.a"
)
