
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/aggregation.cc" "src/sim/CMakeFiles/mbta_sim.dir/aggregation.cc.o" "gcc" "src/sim/CMakeFiles/mbta_sim.dir/aggregation.cc.o.d"
  "/root/repo/src/sim/answers.cc" "src/sim/CMakeFiles/mbta_sim.dir/answers.cc.o" "gcc" "src/sim/CMakeFiles/mbta_sim.dir/answers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/mbta_market.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbta_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
