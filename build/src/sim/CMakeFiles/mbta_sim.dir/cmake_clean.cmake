file(REMOVE_RECURSE
  "CMakeFiles/mbta_sim.dir/aggregation.cc.o"
  "CMakeFiles/mbta_sim.dir/aggregation.cc.o.d"
  "CMakeFiles/mbta_sim.dir/answers.cc.o"
  "CMakeFiles/mbta_sim.dir/answers.cc.o.d"
  "libmbta_sim.a"
  "libmbta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
