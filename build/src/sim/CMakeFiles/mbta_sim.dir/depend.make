# Empty dependencies file for mbta_sim.
# This may be replaced when dependencies are built.
