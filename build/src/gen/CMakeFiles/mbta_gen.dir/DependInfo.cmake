
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/market_generator.cc" "src/gen/CMakeFiles/mbta_gen.dir/market_generator.cc.o" "gcc" "src/gen/CMakeFiles/mbta_gen.dir/market_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/market/CMakeFiles/mbta_market.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbta_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbta_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
