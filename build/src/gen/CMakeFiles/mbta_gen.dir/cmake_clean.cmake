file(REMOVE_RECURSE
  "CMakeFiles/mbta_gen.dir/market_generator.cc.o"
  "CMakeFiles/mbta_gen.dir/market_generator.cc.o.d"
  "libmbta_gen.a"
  "libmbta_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
