file(REMOVE_RECURSE
  "libmbta_gen.a"
)
