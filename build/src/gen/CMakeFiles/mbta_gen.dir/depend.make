# Empty dependencies file for mbta_gen.
# This may be replaced when dependencies are built.
