file(REMOVE_RECURSE
  "CMakeFiles/platform_loop.dir/platform_loop.cpp.o"
  "CMakeFiles/platform_loop.dir/platform_loop.cpp.o.d"
  "platform_loop"
  "platform_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
