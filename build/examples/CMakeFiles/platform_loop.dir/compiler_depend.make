# Empty compiler generated dependencies file for platform_loop.
# This may be replaced when dependencies are built.
