file(REMOVE_RECURSE
  "CMakeFiles/microtask_labeling.dir/microtask_labeling.cpp.o"
  "CMakeFiles/microtask_labeling.dir/microtask_labeling.cpp.o.d"
  "microtask_labeling"
  "microtask_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microtask_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
