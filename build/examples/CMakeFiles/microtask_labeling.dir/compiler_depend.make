# Empty compiler generated dependencies file for microtask_labeling.
# This may be replaced when dependencies are built.
