# Empty compiler generated dependencies file for freelance_matching.
# This may be replaced when dependencies are built.
