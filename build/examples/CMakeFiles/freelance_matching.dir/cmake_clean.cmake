file(REMOVE_RECURSE
  "CMakeFiles/freelance_matching.dir/freelance_matching.cpp.o"
  "CMakeFiles/freelance_matching.dir/freelance_matching.cpp.o.d"
  "freelance_matching"
  "freelance_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freelance_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
