file(REMOVE_RECURSE
  "CMakeFiles/online_dispatch.dir/online_dispatch.cpp.o"
  "CMakeFiles/online_dispatch.dir/online_dispatch.cpp.o.d"
  "online_dispatch"
  "online_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
