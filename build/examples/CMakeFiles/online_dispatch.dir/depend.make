# Empty dependencies file for online_dispatch.
# This may be replaced when dependencies are built.
