# Empty compiler generated dependencies file for mbta_bench_util.
# This may be replaced when dependencies are built.
