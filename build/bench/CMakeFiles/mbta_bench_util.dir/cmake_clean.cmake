file(REMOVE_RECURSE
  "CMakeFiles/mbta_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/mbta_bench_util.dir/bench_util.cc.o.d"
  "libmbta_bench_util.a"
  "libmbta_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
