file(REMOVE_RECURSE
  "libmbta_bench_util.a"
)
