# Empty dependencies file for fig12_approx_quality.
# This may be replaced when dependencies are built.
