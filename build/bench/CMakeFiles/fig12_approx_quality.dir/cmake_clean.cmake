file(REMOVE_RECURSE
  "CMakeFiles/fig12_approx_quality.dir/fig12_approx_quality.cc.o"
  "CMakeFiles/fig12_approx_quality.dir/fig12_approx_quality.cc.o.d"
  "fig12_approx_quality"
  "fig12_approx_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_approx_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
