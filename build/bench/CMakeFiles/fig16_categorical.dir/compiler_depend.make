# Empty compiler generated dependencies file for fig16_categorical.
# This may be replaced when dependencies are built.
