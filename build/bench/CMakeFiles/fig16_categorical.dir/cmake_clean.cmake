file(REMOVE_RECURSE
  "CMakeFiles/fig16_categorical.dir/fig16_categorical.cc.o"
  "CMakeFiles/fig16_categorical.dir/fig16_categorical.cc.o.d"
  "fig16_categorical"
  "fig16_categorical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
