# Empty compiler generated dependencies file for table2_solver_summary.
# This may be replaced when dependencies are built.
