# Empty dependencies file for fig6_alpha_tradeoff.
# This may be replaced when dependencies are built.
