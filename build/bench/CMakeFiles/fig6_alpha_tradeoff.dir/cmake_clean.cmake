file(REMOVE_RECURSE
  "CMakeFiles/fig6_alpha_tradeoff.dir/fig6_alpha_tradeoff.cc.o"
  "CMakeFiles/fig6_alpha_tradeoff.dir/fig6_alpha_tradeoff.cc.o.d"
  "fig6_alpha_tradeoff"
  "fig6_alpha_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_alpha_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
