file(REMOVE_RECURSE
  "CMakeFiles/fig14_reputation_learning.dir/fig14_reputation_learning.cc.o"
  "CMakeFiles/fig14_reputation_learning.dir/fig14_reputation_learning.cc.o.d"
  "fig14_reputation_learning"
  "fig14_reputation_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_reputation_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
