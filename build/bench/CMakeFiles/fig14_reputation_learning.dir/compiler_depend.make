# Empty compiler generated dependencies file for fig14_reputation_learning.
# This may be replaced when dependencies are built.
