# Empty dependencies file for fig13_stability.
# This may be replaced when dependencies are built.
