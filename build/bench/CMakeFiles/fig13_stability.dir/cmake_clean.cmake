file(REMOVE_RECURSE
  "CMakeFiles/fig13_stability.dir/fig13_stability.cc.o"
  "CMakeFiles/fig13_stability.dir/fig13_stability.cc.o.d"
  "fig13_stability"
  "fig13_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
