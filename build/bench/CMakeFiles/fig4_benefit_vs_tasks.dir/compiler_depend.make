# Empty compiler generated dependencies file for fig4_benefit_vs_tasks.
# This may be replaced when dependencies are built.
