file(REMOVE_RECURSE
  "CMakeFiles/fig4_benefit_vs_tasks.dir/fig4_benefit_vs_tasks.cc.o"
  "CMakeFiles/fig4_benefit_vs_tasks.dir/fig4_benefit_vs_tasks.cc.o.d"
  "fig4_benefit_vs_tasks"
  "fig4_benefit_vs_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_benefit_vs_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
