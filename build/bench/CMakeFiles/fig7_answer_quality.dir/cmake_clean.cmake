file(REMOVE_RECURSE
  "CMakeFiles/fig7_answer_quality.dir/fig7_answer_quality.cc.o"
  "CMakeFiles/fig7_answer_quality.dir/fig7_answer_quality.cc.o.d"
  "fig7_answer_quality"
  "fig7_answer_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_answer_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
