# Empty dependencies file for fig7_answer_quality.
# This may be replaced when dependencies are built.
