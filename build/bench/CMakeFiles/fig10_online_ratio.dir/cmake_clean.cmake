file(REMOVE_RECURSE
  "CMakeFiles/fig10_online_ratio.dir/fig10_online_ratio.cc.o"
  "CMakeFiles/fig10_online_ratio.dir/fig10_online_ratio.cc.o.d"
  "fig10_online_ratio"
  "fig10_online_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_online_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
