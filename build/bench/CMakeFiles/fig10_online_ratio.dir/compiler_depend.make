# Empty compiler generated dependencies file for fig10_online_ratio.
# This may be replaced when dependencies are built.
