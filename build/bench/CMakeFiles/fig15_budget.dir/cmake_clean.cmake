file(REMOVE_RECURSE
  "CMakeFiles/fig15_budget.dir/fig15_budget.cc.o"
  "CMakeFiles/fig15_budget.dir/fig15_budget.cc.o.d"
  "fig15_budget"
  "fig15_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
