# Empty dependencies file for fig15_budget.
# This may be replaced when dependencies are built.
