# Empty dependencies file for fig5_benefit_vs_capacity.
# This may be replaced when dependencies are built.
