# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_benefit_vs_capacity.
