# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_benefit_vs_workers.
