file(REMOVE_RECURSE
  "CMakeFiles/fig3_benefit_vs_workers.dir/fig3_benefit_vs_workers.cc.o"
  "CMakeFiles/fig3_benefit_vs_workers.dir/fig3_benefit_vs_workers.cc.o.d"
  "fig3_benefit_vs_workers"
  "fig3_benefit_vs_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_benefit_vs_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
