# Empty compiler generated dependencies file for fig3_benefit_vs_workers.
# This may be replaced when dependencies are built.
