# Empty dependencies file for fig9_runtime_scalability.
# This may be replaced when dependencies are built.
