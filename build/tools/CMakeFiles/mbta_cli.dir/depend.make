# Empty dependencies file for mbta_cli.
# This may be replaced when dependencies are built.
