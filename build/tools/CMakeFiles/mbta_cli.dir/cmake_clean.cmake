file(REMOVE_RECURSE
  "CMakeFiles/mbta_cli.dir/mbta_cli.cc.o"
  "CMakeFiles/mbta_cli.dir/mbta_cli.cc.o.d"
  "mbta_cli"
  "mbta_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
