file(REMOVE_RECURSE
  "CMakeFiles/greedy_solver_test.dir/greedy_solver_test.cc.o"
  "CMakeFiles/greedy_solver_test.dir/greedy_solver_test.cc.o.d"
  "greedy_solver_test"
  "greedy_solver_test.pdb"
  "greedy_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
