file(REMOVE_RECURSE
  "CMakeFiles/labor_market_test.dir/labor_market_test.cc.o"
  "CMakeFiles/labor_market_test.dir/labor_market_test.cc.o.d"
  "labor_market_test"
  "labor_market_test.pdb"
  "labor_market_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/labor_market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
