# Empty dependencies file for labor_market_test.
# This may be replaced when dependencies are built.
