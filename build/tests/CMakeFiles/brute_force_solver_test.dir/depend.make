# Empty dependencies file for brute_force_solver_test.
# This may be replaced when dependencies are built.
