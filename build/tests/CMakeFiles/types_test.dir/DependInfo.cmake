
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/types_test.cc" "tests/CMakeFiles/types_test.dir/types_test.cc.o" "gcc" "tests/CMakeFiles/types_test.dir/types_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/mbta_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mbta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mbta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/mbta_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mbta_io.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/mbta_market.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mbta_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mbta_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mbta_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
