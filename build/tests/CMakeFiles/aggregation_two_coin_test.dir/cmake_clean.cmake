file(REMOVE_RECURSE
  "CMakeFiles/aggregation_two_coin_test.dir/aggregation_two_coin_test.cc.o"
  "CMakeFiles/aggregation_two_coin_test.dir/aggregation_two_coin_test.cc.o.d"
  "aggregation_two_coin_test"
  "aggregation_two_coin_test.pdb"
  "aggregation_two_coin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregation_two_coin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
