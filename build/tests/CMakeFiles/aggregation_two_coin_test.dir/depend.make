# Empty dependencies file for aggregation_two_coin_test.
# This may be replaced when dependencies are built.
