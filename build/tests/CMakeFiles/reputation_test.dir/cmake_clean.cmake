file(REMOVE_RECURSE
  "CMakeFiles/reputation_test.dir/reputation_test.cc.o"
  "CMakeFiles/reputation_test.dir/reputation_test.cc.o.d"
  "reputation_test"
  "reputation_test.pdb"
  "reputation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reputation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
