file(REMOVE_RECURSE
  "CMakeFiles/stable_matching_solver_test.dir/stable_matching_solver_test.cc.o"
  "CMakeFiles/stable_matching_solver_test.dir/stable_matching_solver_test.cc.o.d"
  "stable_matching_solver_test"
  "stable_matching_solver_test.pdb"
  "stable_matching_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stable_matching_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
