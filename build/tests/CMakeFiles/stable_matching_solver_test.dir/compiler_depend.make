# Empty compiler generated dependencies file for stable_matching_solver_test.
# This may be replaced when dependencies are built.
