file(REMOVE_RECURSE
  "CMakeFiles/threshold_solver_test.dir/threshold_solver_test.cc.o"
  "CMakeFiles/threshold_solver_test.dir/threshold_solver_test.cc.o.d"
  "threshold_solver_test"
  "threshold_solver_test.pdb"
  "threshold_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
