file(REMOVE_RECURSE
  "CMakeFiles/baseline_solvers_test.dir/baseline_solvers_test.cc.o"
  "CMakeFiles/baseline_solvers_test.dir/baseline_solvers_test.cc.o.d"
  "baseline_solvers_test"
  "baseline_solvers_test.pdb"
  "baseline_solvers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_solvers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
