# Empty dependencies file for baseline_solvers_test.
# This may be replaced when dependencies are built.
