# Empty compiler generated dependencies file for exact_flow_solver_test.
# This may be replaced when dependencies are built.
