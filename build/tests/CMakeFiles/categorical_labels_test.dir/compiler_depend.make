# Empty compiler generated dependencies file for categorical_labels_test.
# This may be replaced when dependencies are built.
