file(REMOVE_RECURSE
  "CMakeFiles/categorical_labels_test.dir/categorical_labels_test.cc.o"
  "CMakeFiles/categorical_labels_test.dir/categorical_labels_test.cc.o.d"
  "categorical_labels_test"
  "categorical_labels_test.pdb"
  "categorical_labels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/categorical_labels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
