# Empty compiler generated dependencies file for local_search_solver_test.
# This may be replaced when dependencies are built.
