file(REMOVE_RECURSE
  "CMakeFiles/online_solvers_test.dir/online_solvers_test.cc.o"
  "CMakeFiles/online_solvers_test.dir/online_solvers_test.cc.o.d"
  "online_solvers_test"
  "online_solvers_test.pdb"
  "online_solvers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_solvers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
