# Empty dependencies file for online_solvers_test.
# This may be replaced when dependencies are built.
