file(REMOVE_RECURSE
  "CMakeFiles/market_generator_test.dir/market_generator_test.cc.o"
  "CMakeFiles/market_generator_test.dir/market_generator_test.cc.o.d"
  "market_generator_test"
  "market_generator_test.pdb"
  "market_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
